//! Monotonic-clock phase spans with a thread-local trace tree.
//!
//! A span is an RAII guard over one named phase of work
//! (`let _s = span!("eigensolve");`). On drop it records the phase's
//! duration into that phase's global [`Histogram`] (one histogram per
//! distinct phase name, resolved once per call site) and, when the
//! current thread is inside a traced request, appends a node to the
//! request's phase tree.
//!
//! ## Cost model
//!
//! Spans are **globally disabled by default** so the offline CLI and the
//! test suite pay one relaxed atomic load per span site — no clock read,
//! no allocation, nothing. The serving paths ([`set_enabled`] is called
//! by `graphio serve`, `graphio router` and the loadgen) flip the flag
//! on; an enabled span costs two `Instant::now()` calls, one lock-free
//! histogram record, a seqlock frame push/pop on the thread's published
//! profiler stack (`crate::profile`), two thread-local allocation-total
//! reads (`crate::alloc`), and (inside a traced request only) one `Vec`
//! push.
//!
//! ## Trace trees
//!
//! [`begin_request`] opens a per-request context on the current thread:
//! it stamps the request's start instant and trace ID, and — when spans
//! are enabled — collects every span that opens on this thread into a
//! parent-linked node list (the phase tree). [`RequestGuard::finish`]
//! yields the completed [`TraceSummary`]; its JSON form is the slow-log
//! line schema (DESIGN.md §10). Work scattered to *other* threads (the
//! batch fan-out) still records phase histograms but does not appear in
//! the scattering request's tree — the tree is a per-thread causal spine,
//! not a distributed trace.

use crate::hist::Histogram;
use std::cell::RefCell;
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::Instant;

/// Global span switch. Off by default: see the module cost model.
static ENABLED: AtomicBool = AtomicBool::new(false);

/// Enables or disables span recording process-wide.
pub fn set_enabled(enabled: bool) {
    ENABLED.store(enabled, Ordering::Relaxed);
}

/// Whether spans are currently recording.
#[inline]
#[must_use]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Nodes kept per trace tree. A cold large analyze can open thousands of
/// mat-vec spans; past the cap they still feed phase histograms but are
/// dropped from the tree (counted in [`TraceSummary::dropped_spans`]) so
/// a slow-log line stays bounded.
pub const MAX_TRACE_NODES: usize = 512;

// ---------------------------------------------------------------------
// Phase histogram registry
// ---------------------------------------------------------------------

/// One registered histogram family member: `family{label_key="label"}`.
pub struct RegisteredHist {
    /// Metric family name, e.g. `graphio_phase_duration_microseconds`.
    pub family: &'static str,
    /// Label key, e.g. `phase` or `endpoint`.
    pub label_key: &'static str,
    /// Label value, e.g. `eigensolve` or `/analyze`.
    pub label_value: String,
    /// The live histogram.
    pub hist: &'static Histogram,
}

/// Registry of every histogram the process exposes on `/metrics`, keyed
/// by `(family, label_key, label_value)`. Entries are leaked — a metric,
/// once minted, lives for the process — so the record path holds a
/// `&'static` with no lock.
type HistKey = (&'static str, &'static str, String);
static REGISTRY: OnceLock<Mutex<HashMap<HistKey, &'static Histogram>>> = OnceLock::new();

/// The metric family every `span!` phase records into.
pub const PHASE_FAMILY: &str = "graphio_phase_duration_microseconds";

/// Looks up (or creates) the histogram `family{label_key="label_value"}`.
/// The returned reference is `'static`; call sites should cache it.
pub fn histogram(
    family: &'static str,
    label_key: &'static str,
    label_value: &str,
) -> &'static Histogram {
    let registry = REGISTRY.get_or_init(|| Mutex::new(HashMap::new()));
    let mut map = registry.lock().expect("obs registry lock");
    if let Some(h) = map.get(&(family, label_key, label_value.to_string())) {
        return h;
    }
    let h: &'static Histogram = Box::leak(Box::new(Histogram::new()));
    map.insert((family, label_key, label_value.to_string()), h);
    h
}

/// Every registered histogram, sorted by (family, label key, label value)
/// so exposition output is deterministic.
#[must_use]
pub fn registered() -> Vec<RegisteredHist> {
    let Some(registry) = REGISTRY.get() else {
        return Vec::new();
    };
    let map = registry.lock().expect("obs registry lock");
    let mut all: Vec<RegisteredHist> = map
        .iter()
        .map(|((family, label_key, label_value), hist)| RegisteredHist {
            family,
            label_key,
            label_value: label_value.clone(),
            hist,
        })
        .collect();
    all.sort_by(|a, b| {
        (a.family, a.label_key, &a.label_value).cmp(&(b.family, b.label_key, &b.label_value))
    });
    all
}

/// Per-call-site cache of a phase's histogram, so an enabled span does a
/// single relaxed pointer load instead of a registry lookup.
pub struct PhaseSite {
    hist: OnceLock<&'static Histogram>,
}

impl PhaseSite {
    /// A new, unresolved site (used by the `span!` expansion).
    #[must_use]
    pub const fn new() -> PhaseSite {
        PhaseSite {
            hist: OnceLock::new(),
        }
    }
}

impl Default for PhaseSite {
    fn default() -> Self {
        PhaseSite::new()
    }
}

/// Opens a phase span. Prefer the [`span!`] macro, which allocates the
/// per-site cache.
#[macro_export]
macro_rules! span {
    ($name:literal) => {{
        static SITE: $crate::span::PhaseSite = $crate::span::PhaseSite::new();
        $crate::span::SpanGuard::enter($name, &SITE)
    }};
}

// ---------------------------------------------------------------------
// Trace trees
// ---------------------------------------------------------------------

/// One node of a request's phase tree. `Copy` (and heap-free: the name
/// is a `span!` literal) so the flight recorder can hold nodes inline in
/// fixed-size seqlock slots.
#[derive(Debug, Clone, Copy)]
pub struct TraceNode {
    /// The phase name (`span!` literal).
    pub name: &'static str,
    /// Index of the enclosing span in [`TraceSummary::nodes`], if any.
    pub parent: Option<usize>,
    /// Microseconds from the request root to this span opening.
    pub start_us: u64,
    /// The span's duration in microseconds.
    pub dur_us: u64,
    /// Bytes allocated on this thread while the span was open
    /// (*inclusive* — covers child spans, like `dur_us`). Zero unless the
    /// binary installed [`crate::alloc::CountingAlloc`] and enabled it.
    pub alloc_bytes: u64,
    /// Allocation count over the same window, same inclusivity.
    pub allocs: u64,
}

struct RequestCtx {
    trace: u128,
    start: Instant,
    /// Tree collection is active only when spans were enabled at
    /// [`begin_request`] time (flipping the flag mid-request must not
    /// produce a half-tree).
    collect: bool,
    nodes: Vec<TraceNode>,
    stack: Vec<usize>,
    dropped: u64,
}

thread_local! {
    static REQUEST: RefCell<Option<RequestCtx>> = const { RefCell::new(None) };
}

/// A completed request trace: the ID, total elapsed time, and the phase
/// tree (empty when spans were disabled).
#[derive(Debug, Clone)]
pub struct TraceSummary {
    /// The request's trace ID (see [`mint_trace_id`]).
    pub trace: u128,
    /// Wall time from [`begin_request`] to [`RequestGuard::finish`].
    pub elapsed_us: u64,
    /// The phase tree, in span-open order; `parent` indexes into this.
    pub nodes: Vec<TraceNode>,
    /// Spans dropped past [`MAX_TRACE_NODES`].
    pub dropped_spans: u64,
}

impl TraceSummary {
    /// The slow-log JSON line (no trailing newline): trace ID, endpoint,
    /// elapsed, and the phase tree. Phase names are `span!` literals and
    /// the endpoint is a server route — neither needs escaping beyond
    /// what this emits.
    #[must_use]
    pub fn to_json(&self, endpoint: &str) -> String {
        let mut out = format!(
            "{{\"trace\":\"{}\",\"endpoint\":\"{}\",\"elapsed_us\":{},\"dropped_spans\":{},\"spans\":[",
            trace_hex(self.trace),
            endpoint.replace('\\', "\\\\").replace('"', "\\\""),
            self.elapsed_us,
            self.dropped_spans,
        );
        for (i, node) in self.nodes.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&node.to_json());
        }
        out.push_str("]}");
        out
    }
}

impl TraceNode {
    /// One span object of the slow-log / trace-record schema.
    #[must_use]
    pub fn to_json(&self) -> String {
        let parent = match self.parent {
            Some(p) => p.to_string(),
            None => "null".to_string(),
        };
        format!(
            "{{\"name\":\"{}\",\"parent\":{parent},\"start_us\":{},\"dur_us\":{},\
             \"alloc_bytes\":{},\"allocs\":{}}}",
            self.name, self.start_us, self.dur_us, self.alloc_bytes, self.allocs
        )
    }
}

/// RAII for one traced request on the current thread. Dropping without
/// [`RequestGuard::finish`] discards the trace.
pub struct RequestGuard {
    /// Defends against nested `begin_request` on one thread: only the
    /// outermost guard owns (and clears) the thread-local context.
    owner: bool,
}

/// Opens a request context on this thread: stamps the start instant and
/// trace ID, and begins phase-tree collection if spans are enabled.
/// Nested calls return an inert guard (the outer request keeps its tree).
pub fn begin_request(trace: u128) -> RequestGuard {
    REQUEST.with(|cell| {
        let mut slot = cell.borrow_mut();
        if slot.is_some() {
            return RequestGuard { owner: false };
        }
        *slot = Some(RequestCtx {
            trace,
            start: Instant::now(),
            collect: enabled(),
            nodes: Vec::new(),
            stack: Vec::new(),
            dropped: 0,
        });
        RequestGuard { owner: true }
    })
}

impl RequestGuard {
    /// Closes the request and returns its trace. Elapsed time is measured
    /// here; the phase tree is whatever spans closed on this thread.
    #[must_use]
    pub fn finish(self) -> Option<TraceSummary> {
        if !self.owner {
            return None;
        }
        let ctx = REQUEST.with(|cell| cell.borrow_mut().take())?;
        // Suppress the Drop clear; the context is already taken.
        std::mem::forget(self);
        Some(TraceSummary {
            trace: ctx.trace,
            elapsed_us: ctx.start.elapsed().as_micros() as u64,
            nodes: ctx.nodes,
            dropped_spans: ctx.dropped,
        })
    }
}

impl Drop for RequestGuard {
    fn drop(&mut self) {
        if self.owner {
            REQUEST.with(|cell| cell.borrow_mut().take());
        }
    }
}

/// Microseconds since the current thread's request began, if a request
/// context is active. This is the `X-Graphio-Elapsed-Us` source: always
/// available (request contexts are stamped regardless of the span flag).
#[must_use]
pub fn request_elapsed_us() -> Option<u64> {
    REQUEST.with(|cell| {
        cell.borrow()
            .as_ref()
            .map(|ctx| ctx.start.elapsed().as_micros() as u64)
    })
}

/// The current thread's active trace ID, if inside a request.
#[must_use]
pub fn current_trace_id() -> Option<u128> {
    REQUEST.with(|cell| cell.borrow().as_ref().map(|ctx| ctx.trace))
}

// ---------------------------------------------------------------------
// Span guards
// ---------------------------------------------------------------------

/// An open phase span; closes (and records) on drop.
pub struct SpanGuard {
    /// `None` when spans were disabled at entry — drop is then a no-op.
    live: Option<LiveSpan>,
}

struct LiveSpan {
    start: Instant,
    hist: &'static Histogram,
    /// This span's node index in the thread's trace tree, when collected.
    node: Option<usize>,
    /// Thread-cumulative `(bytes, allocs)` at entry; drop differences a
    /// second reading to charge the node (zero deltas when the counting
    /// allocator is absent or off).
    alloc0: (u64, u64),
    /// Whether this span's frame was published to the profiler stack
    /// (false only during TLS teardown); guards the matching pop.
    published: bool,
}

impl SpanGuard {
    /// Opens the span (the [`span!`] macro body). Disabled: one relaxed
    /// load, no clock read.
    #[inline]
    pub fn enter(name: &'static str, site: &PhaseSite) -> SpanGuard {
        if !enabled() {
            return SpanGuard { live: None };
        }
        let hist = *site
            .hist
            .get_or_init(|| histogram(PHASE_FAMILY, "phase", name));
        SpanGuard::open(name, hist)
    }

    /// Opens a span whose name is picked at runtime from a fixed set (the
    /// per-request root span, named by endpoint). Resolves the phase
    /// histogram through the registry on every call — fine at per-request
    /// frequency; hot inner loops should use [`span!`] instead.
    #[must_use]
    pub fn enter_dynamic(name: &'static str) -> SpanGuard {
        if !enabled() {
            return SpanGuard { live: None };
        }
        SpanGuard::open(name, histogram(PHASE_FAMILY, "phase", name))
    }

    fn open(name: &'static str, hist: &'static Histogram) -> SpanGuard {
        let start = Instant::now();
        // Snapshot allocation totals before the node push below, so the
        // tree's own bookkeeping is charged to the parent phase.
        let alloc0 = crate::alloc::thread_totals();
        let node = REQUEST.with(|cell| {
            let mut slot = cell.borrow_mut();
            let ctx = slot.as_mut().filter(|c| c.collect)?;
            if ctx.nodes.len() >= MAX_TRACE_NODES {
                ctx.dropped += 1;
                return None;
            }
            let parent = ctx.stack.last().copied();
            let start_us = ctx.start.elapsed().as_micros() as u64;
            ctx.nodes.push(TraceNode {
                name,
                parent,
                start_us,
                dur_us: 0,
                alloc_bytes: 0,
                allocs: 0,
            });
            let index = ctx.nodes.len() - 1;
            ctx.stack.push(index);
            Some(index)
        });
        let published = crate::profile::push_frame(name);
        SpanGuard {
            live: Some(LiveSpan {
                start,
                hist,
                node,
                alloc0,
                published,
            }),
        }
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        let Some(live) = self.live.take() else {
            return;
        };
        let dur_us = live.start.elapsed().as_micros() as u64;
        // Difference the allocation totals before unpublishing, so a
        // concurrent allocator hook still sees this span as innermost.
        let (bytes_now, allocs_now) = crate::alloc::thread_totals();
        if live.published {
            crate::profile::pop_frame();
        }
        live.hist.record(dur_us);
        if let Some(index) = live.node {
            REQUEST.with(|cell| {
                let mut slot = cell.borrow_mut();
                if let Some(ctx) = slot.as_mut() {
                    if let Some(node) = ctx.nodes.get_mut(index) {
                        node.dur_us = dur_us;
                        node.alloc_bytes = bytes_now.saturating_sub(live.alloc0.0);
                        node.allocs = allocs_now.saturating_sub(live.alloc0.1);
                    }
                    // Drop order nests, but a span can legitimately cross
                    // into finish-less cleanup; only pop our own frame.
                    if ctx.stack.last() == Some(&index) {
                        ctx.stack.pop();
                    }
                }
            });
        }
    }
}

// ---------------------------------------------------------------------
// Trace IDs
// ---------------------------------------------------------------------

/// Per-process counter folded into trace IDs so IDs minted within one
/// clock tick stay distinct.
static TRACE_COUNTER: AtomicU64 = AtomicU64::new(0);

/// Mints a 128-bit trace ID: wall-clock nanoseconds mixed with the
/// process ID and a process-local counter, diffused through SplitMix64.
/// Not cryptographic — unique enough to correlate a slow-log line with a
/// response header across a cluster.
#[must_use]
pub fn mint_trace_id() -> u128 {
    fn mix(mut z: u64) -> u64 {
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
    let nanos = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_nanos() as u64)
        .unwrap_or(0);
    let seq = TRACE_COUNTER.fetch_add(1, Ordering::Relaxed);
    let hi = mix(nanos ^ (u64::from(std::process::id()) << 32));
    let lo = mix(seq.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ nanos.rotate_left(17));
    (u128::from(hi) << 64) | u128::from(lo)
}

/// The 32-hex-character wire form of a trace ID (the `X-Graphio-Trace`
/// header value).
#[must_use]
pub fn trace_hex(trace: u128) -> String {
    format!("{trace:032x}")
}

/// Parses a 32-hex-character trace ID; `None` on any other shape.
#[must_use]
pub fn parse_trace_hex(s: &str) -> Option<u128> {
    if s.len() != 32 {
        return None;
    }
    u128::from_str_radix(s, 16).ok()
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The span flag is process-global; tests that toggle it serialize
    /// here so the parallel test harness cannot interleave them.
    static FLAG_LOCK: Mutex<()> = Mutex::new(());

    #[test]
    fn disabled_spans_record_nothing() {
        let _flag = FLAG_LOCK.lock().unwrap();
        set_enabled(false);
        {
            let _s = crate::span!("obs_test_disabled_phase");
        }
        assert!(!registered()
            .iter()
            .any(|r| r.label_value == "obs_test_disabled_phase"));
    }

    #[test]
    fn enabled_spans_build_a_parented_tree() {
        let _flag = FLAG_LOCK.lock().unwrap();
        set_enabled(true);
        let guard = begin_request(mint_trace_id());
        {
            let _root = crate::span!("obs_test_root");
            std::thread::sleep(std::time::Duration::from_millis(2));
            {
                let _child = crate::span!("obs_test_child");
                std::thread::sleep(std::time::Duration::from_millis(1));
            }
        }
        let summary = guard.finish().expect("owner guard yields a summary");
        set_enabled(false);
        assert_eq!(summary.nodes.len(), 2);
        let root = &summary.nodes[0];
        let child = &summary.nodes[1];
        assert_eq!(root.name, "obs_test_root");
        assert_eq!(root.parent, None);
        assert_eq!(child.parent, Some(0));
        assert!(child.dur_us <= root.dur_us, "{summary:?}");
        assert!(root.dur_us <= summary.elapsed_us, "{summary:?}");
        let json = summary.to_json("/analyze");
        assert!(json.contains(&trace_hex(summary.trace)));
        assert!(json.contains("\"parent\":0"));
    }

    #[test]
    fn trace_ids_roundtrip_and_differ() {
        let a = mint_trace_id();
        let b = mint_trace_id();
        assert_ne!(a, b);
        assert_eq!(parse_trace_hex(&trace_hex(a)), Some(a));
        assert_eq!(parse_trace_hex("zz"), None);
        assert_eq!(parse_trace_hex(&"f".repeat(31)), None);
    }

    #[test]
    fn elapsed_is_stamped_even_when_disabled() {
        let _flag = FLAG_LOCK.lock().unwrap();
        set_enabled(false);
        assert_eq!(request_elapsed_us(), None);
        let guard = begin_request(7);
        assert_eq!(current_trace_id(), Some(7));
        assert!(request_elapsed_us().is_some());
        let summary = guard.finish().unwrap();
        assert_eq!(summary.trace, 7);
        assert!(summary.nodes.is_empty(), "no tree without spans");
        assert_eq!(request_elapsed_us(), None);
    }

    #[test]
    fn nested_request_guards_are_inert() {
        let outer = begin_request(1);
        let inner = begin_request(2);
        assert_eq!(current_trace_id(), Some(1));
        assert!(inner.finish().is_none());
        assert_eq!(current_trace_id(), Some(1), "inner finish keeps outer");
        assert_eq!(outer.finish().unwrap().trace, 1);
    }
}
