//! Prometheus text exposition: a renderer for `GET /metrics` bodies and
//! a validating parser for the test suite and CI.
//!
//! The dialect is Prometheus text format 0.0.4 restricted to what the
//! workspace emits: `# TYPE` comments, `name{label="value",...} value`
//! samples, histograms as cumulative `_bucket{le="..."}` series closed by
//! `le="+Inf"` plus `_sum`/`_count`, and OpenMetrics-style exemplars on
//! `_bucket` lines (`... count # {trace_id="<32 hex>"} value`) linking
//! each latency bucket to a recent fetchable trace. The parser checks
//! structure — every line parses, bucket series are cumulative-monotone,
//! `+Inf` equals `_count`, exemplars appear only on buckets — because
//! "emits valid exposition" is an acceptance test, not a hope.

use crate::hist::{bucket_upper_bound, Exemplar, HistSnapshot, BUCKETS};
use crate::span::{registered, trace_hex};
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Builder for one `/metrics` body. Families are typed once (the first
/// sample of a name emits its `# TYPE` line).
#[derive(Debug, Default)]
pub struct MetricsText {
    buf: String,
    typed: Vec<String>,
}

/// Escapes a label value per the exposition format.
fn escape_label(v: &str) -> String {
    v.replace('\\', "\\\\")
        .replace('"', "\\\"")
        .replace('\n', "\\n")
}

fn label_block(labels: &[(&str, &str)]) -> String {
    if labels.is_empty() {
        return String::new();
    }
    let inner = labels
        .iter()
        .map(|(k, v)| format!("{k}=\"{}\"", escape_label(v)))
        .collect::<Vec<_>>()
        .join(",");
    format!("{{{inner}}}")
}

/// Formats a sample value: integers exactly, floats via `{}` (shortest
/// roundtrip), never scientific-exponent forms the parser would choke on.
fn fmt_value(v: f64) -> String {
    if v.fract() == 0.0 && v.abs() < 9e15 {
        format!("{}", v as i64)
    } else {
        format!("{v}")
    }
}

impl MetricsText {
    /// An empty body.
    #[must_use]
    pub fn new() -> MetricsText {
        MetricsText::default()
    }

    fn type_line(&mut self, name: &str, kind: &str) {
        if !self.typed.iter().any(|t| t == name) {
            let _ = writeln!(self.buf, "# TYPE {name} {kind}");
            self.typed.push(name.to_string());
        }
    }

    /// Appends one counter sample.
    pub fn counter(&mut self, name: &str, labels: &[(&str, &str)], value: u64) {
        self.type_line(name, "counter");
        let _ = writeln!(self.buf, "{name}{} {value}", label_block(labels));
    }

    /// Appends one gauge sample.
    pub fn gauge(&mut self, name: &str, labels: &[(&str, &str)], value: f64) {
        self.type_line(name, "gauge");
        let _ = writeln!(
            self.buf,
            "{name}{} {}",
            label_block(labels),
            fmt_value(value)
        );
    }

    /// Appends one histogram: cumulative `_bucket` series over the
    /// occupied prefix of the log2 buckets, `+Inf`, `_sum`, `_count`.
    /// Empty trailing buckets are elided (the `+Inf` bucket closes the
    /// series), keeping bodies small without losing any count.
    pub fn histogram(&mut self, name: &str, labels: &[(&str, &str)], snap: &HistSnapshot) {
        self.histogram_with_exemplars(name, labels, snap, &[]);
    }

    /// [`MetricsText::histogram`] plus per-bucket exemplars: a bucket
    /// with an [`Exemplar`] renders the OpenMetrics suffix
    /// `# {trace_id="<32 hex>"} <value>` on its `_bucket` line, so a
    /// latency band in a dashboard links to a `GET /trace/{id}`-fetchable
    /// request.
    pub fn histogram_with_exemplars(
        &mut self,
        name: &str,
        labels: &[(&str, &str)],
        snap: &HistSnapshot,
        exemplars: &[Exemplar],
    ) {
        self.type_line(name, "histogram");
        let top = (0..BUCKETS)
            .rev()
            .find(|&i| snap.buckets[i] > 0)
            .map_or(0, |i| (i + 1).min(BUCKETS - 1));
        let mut cumulative = 0u64;
        for i in 0..=top {
            cumulative += snap.buckets[i];
            let mut le_labels: Vec<(&str, String)> =
                labels.iter().map(|(k, v)| (*k, (*v).to_string())).collect();
            le_labels.push(("le", bucket_upper_bound(i).to_string()));
            let rendered = le_labels
                .iter()
                .map(|(k, v)| format!("{k}=\"{}\"", escape_label(v)))
                .collect::<Vec<_>>()
                .join(",");
            let _ = write!(self.buf, "{name}_bucket{{{rendered}}} {cumulative}");
            if let Some(ex) = exemplars.iter().find(|e| e.bucket == i) {
                let _ = write!(
                    self.buf,
                    " # {{trace_id=\"{}\"}} {}",
                    trace_hex(ex.trace),
                    ex.value
                );
            }
            let _ = writeln!(self.buf);
        }
        let mut inf_labels: Vec<String> = labels
            .iter()
            .map(|(k, v)| format!("{k}=\"{}\"", escape_label(v)))
            .collect();
        inf_labels.push("le=\"+Inf\"".to_string());
        let _ = writeln!(
            self.buf,
            "{name}_bucket{{{}}} {}",
            inf_labels.join(","),
            snap.count
        );
        let _ = writeln!(self.buf, "{name}_sum{} {}", label_block(labels), snap.sum);
        let _ = writeln!(
            self.buf,
            "{name}_count{} {}",
            label_block(labels),
            snap.count
        );
    }

    /// The rendered body.
    #[must_use]
    pub fn into_string(self) -> String {
        self.buf
    }
}

/// Renders every histogram in the global registry (request latency per
/// endpoint, per-phase pipeline histograms) into `out`. Shared by the
/// service and router `/metrics` handlers.
pub fn render_registered(out: &mut MetricsText) {
    for reg in registered() {
        out.histogram_with_exemplars(
            reg.family,
            &[(reg.label_key, reg.label_value.as_str())],
            &reg.hist.snapshot(),
            &reg.hist.exemplars(),
        );
    }
}

// ---------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------

/// An exemplar parsed off a `_bucket` line's ` # {...} value` suffix.
#[derive(Debug, Clone, PartialEq)]
pub struct ParsedExemplar {
    /// Exemplar labels (for our emitters, exactly `trace_id`).
    pub labels: Vec<(String, String)>,
    /// The exemplar's measured value.
    pub value: f64,
}

impl ParsedExemplar {
    /// The `trace_id` exemplar label, when present.
    #[must_use]
    pub fn trace_id(&self) -> Option<&str> {
        self.labels
            .iter()
            .find(|(k, _)| k == "trace_id")
            .map(|(_, v)| v.as_str())
    }
}

/// One parsed sample line.
#[derive(Debug, Clone, PartialEq)]
pub struct Sample {
    /// Metric name (including any `_bucket`/`_sum`/`_count` suffix).
    pub name: String,
    /// Labels in appearance order.
    pub labels: Vec<(String, String)>,
    /// The sample value.
    pub value: f64,
    /// The exemplar suffix, when the line carried one.
    pub exemplar: Option<ParsedExemplar>,
}

/// A parsed (and structurally validated) exposition body.
#[derive(Debug, Clone, Default)]
pub struct Exposition {
    /// Every sample line, in order.
    pub samples: Vec<Sample>,
    /// `# TYPE` declarations: name → kind.
    pub types: Vec<(String, String)>,
}

impl Exposition {
    /// The value of the sample whose name matches and whose labels
    /// include every pair in `labels` (subset match).
    #[must_use]
    pub fn value(&self, name: &str, labels: &[(&str, &str)]) -> Option<f64> {
        self.samples
            .iter()
            .find(|s| {
                s.name == name
                    && labels
                        .iter()
                        .all(|(k, v)| s.labels.iter().any(|(sk, sv)| sk == k && sv == v))
            })
            .map(|s| s.value)
    }

    /// Every distinct label value of `key` across samples named `name`.
    #[must_use]
    pub fn label_values(&self, name: &str, key: &str) -> Vec<String> {
        let mut out: Vec<String> = Vec::new();
        for s in self.samples.iter().filter(|s| s.name == name) {
            for (k, v) in &s.labels {
                if k == key && !out.iter().any(|e| e == v) {
                    out.push(v.clone());
                }
            }
        }
        out
    }
}

fn parse_labels(block: &str, line: &str) -> Result<Vec<(String, String)>, String> {
    let mut labels = Vec::new();
    let mut rest = block;
    while !rest.is_empty() {
        let eq = rest
            .find('=')
            .ok_or_else(|| format!("label without '=': {line}"))?;
        let key = rest[..eq].trim().to_string();
        if key.is_empty() || !key.chars().all(|c| c.is_ascii_alphanumeric() || c == '_') {
            return Err(format!("bad label name {key:?}: {line}"));
        }
        rest = &rest[eq + 1..];
        if !rest.starts_with('"') {
            return Err(format!("unquoted label value: {line}"));
        }
        // Scan the quoted value, honoring backslash escapes.
        let bytes = rest.as_bytes();
        let mut i = 1;
        let mut value = String::new();
        loop {
            if i >= bytes.len() {
                return Err(format!("unterminated label value: {line}"));
            }
            match bytes[i] {
                b'"' => break,
                b'\\' => {
                    if i + 1 >= bytes.len() {
                        return Err(format!("dangling escape: {line}"));
                    }
                    match bytes[i + 1] {
                        b'\\' => value.push('\\'),
                        b'"' => value.push('"'),
                        b'n' => value.push('\n'),
                        other => return Err(format!("bad escape \\{}: {line}", other as char)),
                    }
                    i += 2;
                }
                _ => {
                    // Multi-byte UTF-8 is passed through byte-by-byte; the
                    // source is a &str so the bytes reassemble validly.
                    let ch_len = {
                        let s = &rest[i..];
                        s.chars().next().map_or(1, char::len_utf8)
                    };
                    value.push_str(&rest[i..i + ch_len]);
                    i += ch_len;
                }
            }
        }
        labels.push((key, value));
        rest = &rest[i + 1..];
        if let Some(stripped) = rest.strip_prefix(',') {
            rest = stripped;
        } else if !rest.is_empty() {
            return Err(format!("junk after label value: {line}"));
        }
    }
    Ok(labels)
}

/// Parses an exemplar suffix: the `{labels} value` text after a ` # `
/// separator. Returns `None` when the text is not exemplar-shaped — the
/// caller then parses the whole line as a plain sample instead.
fn parse_exemplar(s: &str, line: &str) -> Option<ParsedExemplar> {
    let (block, value_str) = s.rsplit_once(' ')?;
    let inner = block.strip_prefix('{')?.strip_suffix('}')?;
    let labels = parse_labels(inner, line).ok()?;
    let value = value_str.trim().parse::<f64>().ok()?;
    Some(ParsedExemplar { labels, value })
}

/// Parses one exposition body, validating every line and the histogram
/// structure (see [`validate_histograms`]).
///
/// # Errors
/// A human-readable description of the first malformed line or broken
/// histogram invariant.
pub fn parse(text: &str) -> Result<Exposition, String> {
    let mut expo = Exposition::default();
    for line in text.lines() {
        let line = line.trim_end();
        if line.is_empty() {
            continue;
        }
        if let Some(comment) = line.strip_prefix('#') {
            let mut parts = comment.split_whitespace();
            if parts.next() == Some("TYPE") {
                let name = parts
                    .next()
                    .ok_or_else(|| format!("TYPE without name: {line}"))?;
                let kind = parts
                    .next()
                    .ok_or_else(|| format!("TYPE without kind: {line}"))?;
                if !matches!(
                    kind,
                    "counter" | "gauge" | "histogram" | "summary" | "untyped"
                ) {
                    return Err(format!("unknown TYPE kind {kind:?}: {line}"));
                }
                expo.types.push((name.to_string(), kind.to_string()));
            }
            continue; // other comments (# HELP, ...) are free-form
        }
        // name[{labels}] value [# {exemplar labels} exemplar_value]
        //
        // The exemplar separator is searched from the right and only
        // honored when the suffix actually parses as an exemplar, so a
        // (legal, if weird) label value containing " # " cannot be
        // misread as one.
        let (line_sample, exemplar) = match line.rfind(" # ") {
            Some(pos) => match parse_exemplar(&line[pos + 3..], line) {
                Some(ex) => (&line[..pos], Some(ex)),
                None => (line, None),
            },
            None => (line, None),
        };
        let (name_and_labels, value_str) = line_sample
            .rsplit_once(' ')
            .ok_or_else(|| format!("sample without value: {line}"))?;
        let value = value_str
            .trim()
            .parse::<f64>()
            .map_err(|_| format!("bad sample value {value_str:?}: {line}"))?;
        let (name, labels) = match name_and_labels.find('{') {
            Some(open) => {
                let close = name_and_labels
                    .rfind('}')
                    .filter(|&c| c > open)
                    .ok_or_else(|| format!("unbalanced labels: {line}"))?;
                if close != name_and_labels.len() - 1 {
                    return Err(format!("junk after labels: {line}"));
                }
                (
                    &name_and_labels[..open],
                    parse_labels(&name_and_labels[open + 1..close], line)?,
                )
            }
            None => (name_and_labels, Vec::new()),
        };
        if name.is_empty()
            || !name
                .chars()
                .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':')
            || name.starts_with(|c: char| c.is_ascii_digit())
        {
            return Err(format!("bad metric name {name:?}: {line}"));
        }
        if exemplar.is_some() && !name.ends_with("_bucket") {
            return Err(format!("exemplar on non-bucket sample: {line}"));
        }
        expo.samples.push(Sample {
            name: name.to_string(),
            labels,
            value,
            exemplar,
        });
    }
    validate_histograms(&expo)?;
    Ok(expo)
}

/// Checks every histogram family in `expo`: per label-set, the `_bucket`
/// series must be cumulative-monotone in `le`, must end with `le="+Inf"`,
/// and the `+Inf` count must equal the family's `_count` sample.
///
/// # Errors
/// Describes the first violated invariant.
pub fn validate_histograms(expo: &Exposition) -> Result<(), String> {
    // Group buckets by (base name, labels-minus-le).
    type SeriesKey = (String, Vec<(String, String)>);
    let mut series: BTreeMap<SeriesKey, Vec<(f64, f64)>> = BTreeMap::new();
    for s in &expo.samples {
        let Some(base) = s.name.strip_suffix("_bucket") else {
            continue;
        };
        let le = s
            .labels
            .iter()
            .find(|(k, _)| k == "le")
            .map(|(_, v)| v.clone())
            .ok_or_else(|| format!("{}: bucket sample without le label", s.name))?;
        let le_value = if le == "+Inf" {
            f64::INFINITY
        } else {
            le.parse::<f64>()
                .map_err(|_| format!("{}: bad le value {le:?}", s.name))?
        };
        let rest: Vec<(String, String)> = s
            .labels
            .iter()
            .filter(|(k, _)| k != "le")
            .cloned()
            .collect();
        series
            .entry((base.to_string(), rest))
            .or_default()
            .push((le_value, s.value));
    }
    for ((base, labels), mut buckets) in series {
        let label_desc = labels
            .iter()
            .map(|(k, v)| format!("{k}={v}"))
            .collect::<Vec<_>>()
            .join(",");
        buckets.sort_by(|a, b| a.0.partial_cmp(&b.0).expect("le values are not NaN"));
        let mut prev = -1.0f64;
        for &(_, count) in &buckets {
            if count < prev {
                return Err(format!(
                    "{base}{{{label_desc}}}: bucket counts are not cumulative-monotone"
                ));
            }
            prev = count;
        }
        let Some(&(last_le, inf_count)) = buckets.last() else {
            continue;
        };
        if last_le != f64::INFINITY {
            return Err(format!(
                "{base}{{{label_desc}}}: missing le=\"+Inf\" bucket"
            ));
        }
        let labels_ref: Vec<(&str, &str)> = labels
            .iter()
            .map(|(k, v)| (k.as_str(), v.as_str()))
            .collect();
        let count = expo
            .value(&format!("{base}_count"), &labels_ref)
            .ok_or_else(|| format!("{base}{{{label_desc}}}: missing _count sample"))?;
        if (count - inf_count).abs() > f64::EPSILON {
            return Err(format!(
                "{base}{{{label_desc}}}: +Inf bucket {inf_count} != _count {count}"
            ));
        }
        if expo.value(&format!("{base}_sum"), &labels_ref).is_none() {
            return Err(format!("{base}{{{label_desc}}}: missing _sum sample"));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hist::Histogram;

    #[test]
    fn render_then_parse_roundtrips() {
        let h = Histogram::new();
        for v in [0u64, 1, 3, 900, 7_000, 7_001, 1_000_000] {
            h.record(v);
        }
        let mut out = MetricsText::new();
        out.counter("graphio_requests_total", &[("endpoint", "/analyze")], 7);
        out.gauge("graphio_uptime_seconds", &[], 12.5);
        out.histogram(
            "graphio_request_duration_microseconds",
            &[("endpoint", "/analyze")],
            &h.snapshot(),
        );
        let text = out.into_string();
        let expo = parse(&text).expect("rendered body parses");
        assert_eq!(
            expo.value("graphio_requests_total", &[("endpoint", "/analyze")]),
            Some(7.0)
        );
        assert_eq!(expo.value("graphio_uptime_seconds", &[]), Some(12.5));
        assert_eq!(
            expo.value(
                "graphio_request_duration_microseconds_count",
                &[("endpoint", "/analyze")]
            ),
            Some(7.0)
        );
        assert_eq!(
            expo.value(
                "graphio_request_duration_microseconds_bucket",
                &[("endpoint", "/analyze"), ("le", "+Inf")]
            ),
            Some(7.0)
        );
        assert!(expo
            .types
            .iter()
            .any(|(n, k)| n == "graphio_request_duration_microseconds" && k == "histogram"));
    }

    #[test]
    fn parser_rejects_malformed_lines() {
        for bad in [
            "no_value_here",
            "name{unterminated=\"x} 3",
            "name{bad-label=\"x\"} 3",
            "name{a=\"x\"}junk 3",
            "1leading_digit 3",
            "name not_a_number",
        ] {
            assert!(parse(bad).is_err(), "{bad:?} must be rejected");
        }
    }

    #[test]
    fn parser_rejects_non_monotone_buckets() {
        let text = "\
m_bucket{le=\"1\"} 5
m_bucket{le=\"3\"} 4
m_bucket{le=\"+Inf\"} 6
m_sum 10
m_count 6
";
        assert!(parse(text).unwrap_err().contains("monotone"));
    }

    #[test]
    fn parser_requires_inf_and_count_agreement() {
        let no_inf = "m_bucket{le=\"1\"} 5\nm_sum 1\nm_count 5\n";
        assert!(parse(no_inf).unwrap_err().contains("+Inf"));
        let mismatch = "m_bucket{le=\"+Inf\"} 5\nm_sum 1\nm_count 6\n";
        assert!(parse(mismatch).unwrap_err().contains("!= _count"));
    }

    #[test]
    fn escaped_label_values_roundtrip() {
        let mut out = MetricsText::new();
        out.counter("m", &[("path", "a\"b\\c")], 1);
        let expo = parse(&out.into_string()).unwrap();
        assert_eq!(expo.value("m", &[("path", "a\"b\\c")]), Some(1.0));
    }

    /// Satellite: every escapable character class — backslash, quote,
    /// newline, and combinations a hostile backend address could carry —
    /// must render as valid exposition and parse back verbatim, for
    /// counters, gauges and full histogram series alike.
    #[test]
    fn hostile_label_values_roundtrip_through_render_and_parse() {
        let hostile = [
            "plain",
            "back\\slash",
            "quo\"te",
            "new\nline",
            "\\",
            "\"",
            "\n",
            "tab\tand space end\\",
            "127.0.0.1:7878\n\"evil\\addr\"",
            "trailing newline\n",
            "a # b",
            "μs/λ unicode",
        ];
        for value in hostile {
            let h = Histogram::new();
            h.record(5);
            h.record(900);
            let mut out = MetricsText::new();
            out.counter("m_total", &[("backend", value)], 3);
            out.gauge("m_gauge", &[("backend", value)], 1.5);
            out.histogram("m_hist", &[("backend", value)], &h.snapshot());
            let text = out.into_string();
            let expo = parse(&text)
                .unwrap_or_else(|e| panic!("render of {value:?} must parse: {e}\n{text}"));
            assert_eq!(
                expo.value("m_total", &[("backend", value)]),
                Some(3.0),
                "counter label {value:?} round-trips"
            );
            assert_eq!(expo.value("m_gauge", &[("backend", value)]), Some(1.5));
            assert_eq!(
                expo.value("m_hist_count", &[("backend", value)]),
                Some(2.0),
                "histogram labels {value:?} round-trip"
            );
        }
    }

    #[test]
    fn exemplars_render_and_parse_back() {
        let h = Histogram::new();
        h.record_with_exemplar(3, 0xDEAD_BEEF);
        h.record_with_exemplar(70_000, 0xCAFE);
        let mut out = MetricsText::new();
        out.histogram_with_exemplars(
            "m",
            &[("endpoint", "/analyze")],
            &h.snapshot(),
            &h.exemplars(),
        );
        let text = out.into_string();
        let expo = parse(&text).expect("exemplar body parses");
        let with_exemplars: Vec<_> = expo
            .samples
            .iter()
            .filter(|s| s.exemplar.is_some())
            .collect();
        assert_eq!(with_exemplars.len(), 2, "{text}");
        let first = with_exemplars[0].exemplar.as_ref().unwrap();
        assert_eq!(first.trace_id(), Some("000000000000000000000000deadbeef"));
        assert_eq!(first.value, 3.0);
        let second = with_exemplars[1].exemplar.as_ref().unwrap();
        assert_eq!(second.trace_id(), Some("0000000000000000000000000000cafe"));
        assert_eq!(second.value, 70_000.0);
        // The bucket counts themselves are unaffected by exemplar suffixes.
        assert_eq!(
            expo.value("m_count", &[("endpoint", "/analyze")]),
            Some(2.0)
        );
    }

    #[test]
    fn exemplars_are_rejected_off_bucket_lines_but_hash_labels_are_not_exemplars() {
        let bad = "m_total 3 # {trace_id=\"00ff\"} 3\n";
        assert!(parse(bad).unwrap_err().contains("non-bucket"));
        // A label value containing the separator text parses as a plain
        // sample, not an exemplar.
        let sneaky = "m_total{path=\"a # b\"} 3\n";
        let expo = parse(sneaky).unwrap();
        assert_eq!(expo.value("m_total", &[("path", "a # b")]), Some(3.0));
        assert!(expo.samples[0].exemplar.is_none());
    }

    #[test]
    fn registered_histograms_render_with_exemplars() {
        let h = crate::span::histogram("expo_test_exemplar_family", "endpoint", "/t");
        h.record_with_exemplar(9, 0xF00D);
        let mut out = MetricsText::new();
        render_registered(&mut out);
        let text = out.into_string();
        let expo = parse(&text).expect("registry body parses");
        assert!(
            expo.samples.iter().any(|s| {
                s.name == "expo_test_exemplar_family_bucket"
                    && s.exemplar
                        .as_ref()
                        .and_then(ParsedExemplar::trace_id)
                        .is_some_and(|t| t.ends_with("f00d"))
            }),
            "{text}"
        );
    }
}
