//! Fixed-bucket log2 latency histograms with striped atomic counters.
//!
//! A [`Histogram`] is an HDR-style accumulator for microsecond durations:
//! values land in one of [`BUCKETS`] power-of-two buckets (bucket `i`
//! covers the values whose bit length is `i`, so bucket boundaries are
//! `2^i − 1`), giving ≤ 2× relative quantile error across twelve orders
//! of magnitude with a few hundred bytes of state and no allocation on
//! the record path.
//!
//! Recording is **lock-free and wait-free**: one relaxed `fetch_add` into
//! a per-thread stripe (threads hash onto [`STRIPES`] independent counter
//! banks, so concurrent recorders do not contend on a cache line) plus a
//! relaxed `fetch_max` for the exact maximum. Reading merges the stripes
//! into an owned [`HistSnapshot`], which is mergeable across histograms
//! (the loadgen merges per-connection histograms this way) and extracts
//! p50/p90/p99 at bucket resolution and the maximum exactly.

use std::sync::atomic::{AtomicU64, Ordering};

/// Number of log2 buckets. Bucket `BUCKETS − 1` is open-ended, so the
/// covered exact range is `[0, 2^(BUCKETS−1) − 1]` microseconds — with 40
/// buckets, values up to ~6.4 days land in an exact bucket and anything
/// beyond clamps into the last one.
pub const BUCKETS: usize = 40;

/// Independent counter banks; concurrent recorders hash onto stripes to
/// avoid cache-line contention. Merged on read.
pub const STRIPES: usize = 8;

/// The bucket a value lands in: 0 for 0, otherwise the value's bit length
/// (`floor(log2(v)) + 1`), clamped to the open-ended last bucket.
#[inline]
#[must_use]
pub fn bucket_index(value: u64) -> usize {
    ((64 - value.leading_zeros()) as usize).min(BUCKETS - 1)
}

/// The largest value bucket `index` covers (`2^index − 1`); the last
/// bucket is open-ended and reports `u64::MAX`.
#[must_use]
pub fn bucket_upper_bound(index: usize) -> u64 {
    if index >= BUCKETS - 1 {
        u64::MAX
    } else {
        (1u64 << index) - 1
    }
}

/// One stripe: a full bucket array plus count/sum, padded out by the
/// enclosing array layout. All counters relaxed — per-stripe totals only
/// need to be eventually consistent, and the merge on read sums them.
struct Stripe {
    buckets: [AtomicU64; BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
}

impl Stripe {
    fn new() -> Stripe {
        Stripe {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
        }
    }
}

/// A lock-free fixed-bucket log2 histogram (see the module docs).
pub struct Histogram {
    stripes: [Stripe; STRIPES],
    /// Exact maximum recorded value (relaxed `fetch_max`).
    max: AtomicU64,
    /// Per-bucket exemplar: the most recent trace ID (split across two
    /// words) and measured value to land in each bucket. Written with
    /// independent relaxed stores, so a concurrent reader can observe a
    /// mix of two exemplars — acceptable for an advisory "here is *a*
    /// recent trace in this latency band" link (both halves still name
    /// fetchable traces), and the price of keeping the record path free
    /// of any wider synchronization.
    exemplar_hi: [AtomicU64; BUCKETS],
    exemplar_lo: [AtomicU64; BUCKETS],
    exemplar_val: [AtomicU64; BUCKETS],
}

/// One per-bucket exemplar: a recent trace that landed in `bucket` with
/// the measured `value`. Rendered as Prometheus exemplar syntax on
/// `_bucket` lines by [`crate::expo::MetricsText::histogram`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Exemplar {
    /// The bucket index (see [`bucket_index`]).
    pub bucket: usize,
    /// The exemplar trace ID (never 0 — 0 marks an empty slot).
    pub trace: u128,
    /// The recorded value that selected this exemplar.
    pub value: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram::new()
    }
}

/// The stripe the current thread records into. ThreadId has no stable
/// numeric accessor, so hash it; consecutive spawns spread across stripes.
fn stripe_of_thread() -> usize {
    use std::hash::{Hash, Hasher};
    let mut h = std::hash::DefaultHasher::new();
    std::thread::current().id().hash(&mut h);
    (h.finish() as usize) % STRIPES
}

impl Histogram {
    /// An empty histogram.
    #[must_use]
    pub fn new() -> Histogram {
        Histogram {
            stripes: std::array::from_fn(|_| Stripe::new()),
            max: AtomicU64::new(0),
            exemplar_hi: std::array::from_fn(|_| AtomicU64::new(0)),
            exemplar_lo: std::array::from_fn(|_| AtomicU64::new(0)),
            exemplar_val: std::array::from_fn(|_| AtomicU64::new(0)),
        }
    }

    /// Records one value (a duration in microseconds, by convention).
    /// Lock-free: two relaxed `fetch_add`s and a relaxed `fetch_max`.
    pub fn record(&self, value: u64) {
        let stripe = &self.stripes[stripe_of_thread()];
        stripe.buckets[bucket_index(value)].fetch_add(1, Ordering::Relaxed);
        stripe.count.fetch_add(1, Ordering::Relaxed);
        stripe.sum.fetch_add(value, Ordering::Relaxed);
        self.max.fetch_max(value, Ordering::Relaxed);
    }

    /// Records one value and stamps it as its bucket's exemplar (most
    /// recent write wins). Still lock-free: three extra relaxed stores.
    /// A trace ID of 0 records without an exemplar.
    pub fn record_with_exemplar(&self, value: u64, trace: u128) {
        self.record(value);
        if trace != 0 {
            let i = bucket_index(value);
            self.exemplar_hi[i].store((trace >> 64) as u64, Ordering::Relaxed);
            self.exemplar_lo[i].store(trace as u64, Ordering::Relaxed);
            self.exemplar_val[i].store(value, Ordering::Relaxed);
        }
    }

    /// The current per-bucket exemplars (buckets that never saw an
    /// exemplar-carrying record are omitted).
    #[must_use]
    pub fn exemplars(&self) -> Vec<Exemplar> {
        (0..BUCKETS)
            .filter_map(|i| {
                let hi = self.exemplar_hi[i].load(Ordering::Relaxed);
                let lo = self.exemplar_lo[i].load(Ordering::Relaxed);
                let trace = (u128::from(hi) << 64) | u128::from(lo);
                (trace != 0).then(|| Exemplar {
                    bucket: i,
                    trace,
                    value: self.exemplar_val[i].load(Ordering::Relaxed),
                })
            })
            .collect()
    }

    /// Merges all stripes into an owned snapshot.
    #[must_use]
    pub fn snapshot(&self) -> HistSnapshot {
        let mut snap = HistSnapshot::default();
        for stripe in &self.stripes {
            for (i, b) in stripe.buckets.iter().enumerate() {
                snap.buckets[i] += b.load(Ordering::Relaxed);
            }
            snap.count += stripe.count.load(Ordering::Relaxed);
            snap.sum += stripe.sum.load(Ordering::Relaxed);
        }
        snap.max = self.max.load(Ordering::Relaxed);
        snap
    }
}

impl std::fmt::Debug for Histogram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Histogram")
            .field("snapshot", &self.snapshot())
            .finish()
    }
}

/// An owned, mergeable point-in-time view of a [`Histogram`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistSnapshot {
    /// Per-bucket counts (see [`bucket_index`]).
    pub buckets: [u64; BUCKETS],
    /// Total values recorded.
    pub count: u64,
    /// Sum of recorded values (wrapping only past `u64::MAX` total µs).
    pub sum: u64,
    /// Exact maximum recorded value (0 when empty).
    pub max: u64,
}

impl Default for HistSnapshot {
    fn default() -> Self {
        HistSnapshot {
            buckets: [0; BUCKETS],
            count: 0,
            sum: 0,
            max: 0,
        }
    }
}

impl HistSnapshot {
    /// Adds `other`'s counts into `self` (the loadgen merges per-worker
    /// histograms; merged totals equal the sum of the parts exactly).
    pub fn merge(&mut self, other: &HistSnapshot) {
        for (a, b) in self.buckets.iter_mut().zip(&other.buckets) {
            *a += b;
        }
        self.count += other.count;
        self.sum += other.sum;
        self.max = self.max.max(other.max);
    }

    /// The value at quantile `q ∈ [0, 1]`, reported as the upper bound of
    /// the bucket holding the rank-`⌈q·count⌉` sample (≤ 2× relative
    /// error by construction; `q = 1` additionally benefits from the
    /// exact max, see [`HistSnapshot::max`]). Returns 0 when empty.
    #[must_use]
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (i, &b) in self.buckets.iter().enumerate() {
            seen += b;
            if seen >= rank {
                // Never report past the exact maximum: the top occupied
                // bucket's upper bound can exceed every recorded value.
                return bucket_upper_bound(i).min(self.max);
            }
        }
        self.max
    }

    /// Median (bucket resolution).
    #[must_use]
    pub fn p50(&self) -> u64 {
        self.quantile(0.50)
    }

    /// 90th percentile (bucket resolution).
    #[must_use]
    pub fn p90(&self) -> u64 {
        self.quantile(0.90)
    }

    /// 99th percentile (bucket resolution).
    #[must_use]
    pub fn p99(&self) -> u64 {
        self.quantile(0.99)
    }

    /// 99.9th percentile (bucket resolution) — the tail the flight
    /// recorder's retention policy and `loadgen` reports care about.
    #[must_use]
    pub fn p999(&self) -> u64 {
        self.quantile(0.999)
    }

    /// Mean of recorded values, 0 when empty.
    #[must_use]
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_boundaries_are_powers_of_two_minus_one() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 1);
        assert_eq!(bucket_index(2), 2);
        assert_eq!(bucket_index(3), 2);
        assert_eq!(bucket_index(4), 3);
        for i in 1..BUCKETS - 1 {
            let ub = bucket_upper_bound(i);
            assert_eq!(bucket_index(ub), i, "upper bound stays in bucket {i}");
            assert_eq!(
                bucket_index(ub + 1),
                i + 1,
                "ub+1 spills to bucket {}",
                i + 1
            );
        }
        assert_eq!(bucket_index(u64::MAX), BUCKETS - 1);
        assert_eq!(bucket_upper_bound(BUCKETS - 1), u64::MAX);
    }

    #[test]
    fn empty_histogram_reports_zeros() {
        let snap = Histogram::new().snapshot();
        assert_eq!(snap.count, 0);
        assert_eq!(snap.quantile(0.5), 0);
        assert_eq!(snap.max, 0);
        assert_eq!(snap.mean(), 0.0);
    }

    #[test]
    fn exemplars_track_the_latest_trace_per_bucket() {
        let h = Histogram::new();
        assert!(h.exemplars().is_empty());
        h.record_with_exemplar(3, 0xAA); // bucket 2
        h.record_with_exemplar(2, 0xBB); // bucket 2, replaces
        h.record_with_exemplar(1000, 0xCC); // bucket 10
        h.record_with_exemplar(7, 0); // trace 0: counted, no exemplar
        let ex = h.exemplars();
        assert_eq!(ex.len(), 2);
        assert_eq!(
            ex[0],
            Exemplar {
                bucket: 2,
                trace: 0xBB,
                value: 2
            }
        );
        assert_eq!(
            ex[1],
            Exemplar {
                bucket: bucket_index(1000),
                trace: 0xCC,
                value: 1000
            }
        );
        assert_eq!(h.snapshot().count, 4, "every record still counts");
    }

    #[test]
    fn single_sample_is_every_quantile() {
        let h = Histogram::new();
        h.record(37);
        let snap = h.snapshot();
        assert_eq!(snap.count, 1);
        assert_eq!(snap.sum, 37);
        assert_eq!(snap.max, 37);
        for q in [0.0, 0.5, 0.99, 1.0] {
            let v = snap.quantile(q);
            assert_eq!(bucket_index(v), bucket_index(37), "q={q}");
        }
    }
}
