//! Property-based tests for the baseline bounds and the exact oracle.

use graphio_baselines::convex_mincut::{
    convex_min_cut_bound, wavefront_cut, ConvexMinCutOptions, VertexSweep,
};
use graphio_baselines::exact_optimal_io;
use graphio_graph::generators::{erdos_renyi_dag, layered_random_dag};
use graphio_graph::topo::natural_order;
use graphio_graph::CompGraph;
use graphio_pebble::{simulate, Policy};
use proptest::prelude::*;

fn small_random_dag() -> impl Strategy<Value = CompGraph> {
    (0u64..400, 0usize..2).prop_map(|(seed, kind)| match kind {
        0 => layered_random_dag(2 + (seed as usize % 3), 2 + (seed as usize % 3), 0.6, seed),
        _ => erdos_renyi_dag(4 + (seed as usize % 8), 0.35, seed),
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn wavefront_cut_is_bounded_by_closure_sizes(g in small_random_dag(), pick in 0usize..64) {
        if g.n() == 0 {
            return Ok(());
        }
        let v = pick % g.n();
        let cut = wavefront_cut(&g, v);
        // The prefix S = Anc(v) ∪ {v} witnesses a wavefront of at most
        // |Anc(v)| + 1, and the complement-side witness bounds it by the
        // descendant closure's in-boundary, itself ≤ n.
        prop_assert!(cut <= g.ancestors(v).len() as u64 + 1);
        prop_assert!(cut <= g.n() as u64);
        if g.descendants(v).is_empty() {
            prop_assert_eq!(cut, 0);
        }
    }

    #[test]
    fn mincut_bound_is_linear_in_memory(g in small_random_dag()) {
        let r0 = convex_min_cut_bound(&g, 0, &ConvexMinCutOptions::default());
        for m in 1..4usize {
            let rm = convex_min_cut_bound(&g, m, &ConvexMinCutOptions::default());
            let expect = r0.max_cut.saturating_sub(m as u64) * 2;
            prop_assert_eq!(rm.bound, expect);
        }
    }

    #[test]
    fn sampling_never_exceeds_full_sweep(g in small_random_dag(), count in 1usize..8, seed in 0u64..20) {
        if g.n() == 0 {
            return Ok(());
        }
        let full = convex_min_cut_bound(&g, 1, &ConvexMinCutOptions::default());
        let sampled = convex_min_cut_bound(
            &g,
            1,
            &ConvexMinCutOptions {
                sweep: VertexSweep::Sample { count, seed },
                ..Default::default()
            },
        );
        prop_assert!(sampled.bound <= full.bound);
        prop_assert!(sampled.max_cut <= full.max_cut);
    }

    #[test]
    fn all_lower_bounds_respect_the_exact_optimum(g in small_random_dag()) {
        if g.n() == 0 || g.n() > 14 {
            return Ok(());
        }
        let m = g.max_in_degree() + 1;
        let Ok(exact) = exact_optimal_io(&g, m, 3_000_000) else {
            return Ok(()); // budget blown on an adversarial case — skip
        };
        let mc = convex_min_cut_bound(&g, m, &ConvexMinCutOptions::default());
        prop_assert!(
            mc.bound <= exact.io,
            "min-cut {} > exact {}", mc.bound, exact.io
        );
        // And the exact optimum is achievable by some simulated execution
        // only from above.
        let order = natural_order(&g);
        for policy in [Policy::Lru, Policy::Belady] {
            let sim = simulate(&g, &order, m, policy, 0).unwrap();
            prop_assert!(exact.io <= sim.io());
        }
    }

    #[test]
    fn exact_is_monotone_in_memory(g in small_random_dag()) {
        if g.n() == 0 || g.n() > 12 {
            return Ok(());
        }
        let m0 = g.max_in_degree() + 1;
        let mut prev = u64::MAX;
        for m in m0..(m0 + 3) {
            let Ok(r) = exact_optimal_io(&g, m, 3_000_000) else {
                return Ok(());
            };
            prop_assert!(r.io <= prev);
            prev = r.io;
        }
    }
}
