//! Dinic's max-flow algorithm on adjacency-list networks.
//!
//! The convex min-cut baseline reduces each per-vertex wavefront problem to
//! an `s`–`t` min cut on a split-vertex network with unit and "infinite"
//! capacities; Dinic's `O(E·√V)` behaviour on unit-capacity networks keeps
//! the whole-graph sweep tractable.

/// Capacity value treated as infinite (never saturated in our networks:
/// every s–t path also crosses a unit arc).
pub const INF: u64 = u64::MAX / 4;

#[derive(Debug, Clone)]
struct Edge {
    to: u32,
    cap: u64,
}

/// A flow network under construction / being solved.
#[derive(Debug, Clone)]
pub struct FlowNetwork {
    /// Forward+backward edges; edge `i^1` is the reverse of edge `i`.
    edges: Vec<Edge>,
    /// Adjacency: edge indices per node.
    adj: Vec<Vec<u32>>,
    level: Vec<i32>,
    iter: Vec<usize>,
}

impl FlowNetwork {
    /// Creates an empty network with `nodes` nodes.
    pub fn new(nodes: usize) -> Self {
        FlowNetwork {
            edges: Vec::new(),
            adj: vec![Vec::new(); nodes],
            level: vec![-1; nodes],
            iter: vec![0; nodes],
        }
    }

    /// Number of nodes.
    pub fn nodes(&self) -> usize {
        self.adj.len()
    }

    /// Adds a directed edge `from → to` with capacity `cap` (plus the
    /// implicit residual reverse edge of capacity 0).
    ///
    /// # Panics
    /// Panics if an endpoint is out of range.
    pub fn add_edge(&mut self, from: usize, to: usize, cap: u64) {
        assert!(
            from < self.nodes() && to < self.nodes(),
            "edge out of range"
        );
        let id = self.edges.len() as u32;
        self.edges.push(Edge { to: to as u32, cap });
        self.edges.push(Edge {
            to: from as u32,
            cap: 0,
        });
        self.adj[from].push(id);
        self.adj[to].push(id + 1);
    }

    fn bfs(&mut self, s: usize, t: usize) -> bool {
        self.level.fill(-1);
        let mut queue = std::collections::VecDeque::new();
        self.level[s] = 0;
        queue.push_back(s);
        while let Some(u) = queue.pop_front() {
            for &eid in &self.adj[u] {
                let e = &self.edges[eid as usize];
                let v = e.to as usize;
                if e.cap > 0 && self.level[v] < 0 {
                    self.level[v] = self.level[u] + 1;
                    queue.push_back(v);
                }
            }
        }
        self.level[t] >= 0
    }

    fn dfs(&mut self, u: usize, t: usize, pushed: u64) -> u64 {
        if u == t {
            return pushed;
        }
        while self.iter[u] < self.adj[u].len() {
            let eid = self.adj[u][self.iter[u]] as usize;
            let (to, cap) = {
                let e = &self.edges[eid];
                (e.to as usize, e.cap)
            };
            if cap > 0 && self.level[to] == self.level[u] + 1 {
                let d = self.dfs(to, t, pushed.min(cap));
                if d > 0 {
                    self.edges[eid].cap -= d;
                    self.edges[eid ^ 1].cap += d;
                    return d;
                }
            }
            self.iter[u] += 1;
        }
        0
    }

    /// Computes the maximum `s`–`t` flow (destroys capacities; one-shot).
    ///
    /// # Panics
    /// Panics if `s == t` or either is out of range.
    pub fn max_flow(&mut self, s: usize, t: usize) -> u64 {
        self.max_flow_capped(s, t, u64::MAX)
    }

    /// [`FlowNetwork::max_flow`] that stops early after the first
    /// blocking-flow phase in which the accumulated flow reaches `cap`.
    ///
    /// The returned value is the flow found so far, which is always a
    /// **lower bound** on the true maximum flow (flow only accumulates),
    /// so min-cut-style lower bounds computed from it stay valid — they
    /// just may stop short of the tightest value. With `cap = u64::MAX`
    /// this is exactly `max_flow`. Phases are never abandoned midway, so
    /// the result is deterministic for a given network and cap.
    pub fn max_flow_capped(&mut self, s: usize, t: usize, cap: u64) -> u64 {
        assert!(s < self.nodes() && t < self.nodes() && s != t);
        let mut flow = 0u64;
        while flow < cap && self.bfs(s, t) {
            self.iter.fill(0);
            loop {
                let f = self.dfs(s, t, INF);
                if f == 0 {
                    break;
                }
                flow += f;
            }
        }
        flow
    }

    /// After [`FlowNetwork::max_flow`], the set of nodes reachable from `s`
    /// in the residual network — the `s`-side of a minimum cut.
    pub fn min_cut_side(&self, s: usize) -> Vec<bool> {
        let mut seen = vec![false; self.nodes()];
        let mut stack = vec![s];
        seen[s] = true;
        while let Some(u) = stack.pop() {
            for &eid in &self.adj[u] {
                let e = &self.edges[eid as usize];
                let v = e.to as usize;
                if e.cap > 0 && !seen[v] {
                    seen[v] = true;
                    stack.push(v);
                }
            }
        }
        seen
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_edge() {
        let mut net = FlowNetwork::new(2);
        net.add_edge(0, 1, 5);
        assert_eq!(net.max_flow(0, 1), 5);
    }

    #[test]
    fn classic_textbook_network() {
        // CLRS-style: max flow 23.
        let mut net = FlowNetwork::new(6);
        net.add_edge(0, 1, 16);
        net.add_edge(0, 2, 13);
        net.add_edge(1, 3, 12);
        net.add_edge(2, 1, 4);
        net.add_edge(2, 4, 14);
        net.add_edge(3, 2, 9);
        net.add_edge(3, 5, 20);
        net.add_edge(4, 3, 7);
        net.add_edge(4, 5, 4);
        assert_eq!(net.max_flow(0, 5), 23);
    }

    #[test]
    fn parallel_paths_sum() {
        let mut net = FlowNetwork::new(4);
        net.add_edge(0, 1, 1);
        net.add_edge(1, 3, 1);
        net.add_edge(0, 2, 1);
        net.add_edge(2, 3, 1);
        assert_eq!(net.max_flow(0, 3), 2);
    }

    #[test]
    fn bottleneck_limits_flow() {
        // Two sources of capacity feed one unit arc.
        let mut net = FlowNetwork::new(4);
        net.add_edge(0, 1, INF);
        net.add_edge(0, 2, INF);
        net.add_edge(1, 3, 1);
        net.add_edge(2, 3, 1);
        assert_eq!(net.max_flow(0, 3), 2);
    }

    #[test]
    fn capped_flow_lower_bounds_and_matches_when_loose() {
        // Wide network: many disjoint unit paths, so true max flow = 8.
        let build = || {
            let mut net = FlowNetwork::new(18);
            for i in 0..8 {
                net.add_edge(0, 1 + i, 1);
                net.add_edge(1 + i, 9 + i, 1);
                net.add_edge(9 + i, 17, 1);
            }
            net
        };
        assert_eq!(build().max_flow(0, 17), 8);
        // A loose cap changes nothing.
        assert_eq!(build().max_flow_capped(0, 17, 100), 8);
        // A tight cap stops early but never under-reports below the cap
        // while more flow is available (phases complete atomically).
        let capped = build().max_flow_capped(0, 17, 3);
        assert!((3..=8).contains(&capped), "capped={capped}");
        // Determinism: same network, same cap, same answer.
        assert_eq!(capped, build().max_flow_capped(0, 17, 3));
    }

    #[test]
    fn disconnected_means_zero() {
        let mut net = FlowNetwork::new(3);
        net.add_edge(0, 1, 7);
        assert_eq!(net.max_flow(0, 2), 0);
    }

    #[test]
    fn min_cut_side_separates() {
        let mut net = FlowNetwork::new(4);
        net.add_edge(0, 1, 2);
        net.add_edge(1, 2, 1); // bottleneck
        net.add_edge(2, 3, 2);
        assert_eq!(net.max_flow(0, 3), 1);
        let side = net.min_cut_side(0);
        assert!(side[0] && side[1]);
        assert!(!side[2] && !side[3]);
    }

    #[test]
    fn vertex_split_unit_cut() {
        // Vertex-capacity modelling: v_in -> v_out cap 1; three disjoint
        // paths but all through one vertex => flow 1.
        let mut net = FlowNetwork::new(8);
        let (s, t) = (6, 7);
        let v_in = 0;
        let v_out = 1;
        net.add_edge(v_in, v_out, 1);
        for i in 0..3 {
            let a = 2 + i;
            net.add_edge(s, a, INF);
            net.add_edge(a, v_in, INF);
        }
        net.add_edge(v_out, 5, INF);
        net.add_edge(5, t, INF);
        assert_eq!(net.max_flow(s, t), 1);
    }
}
