//! Baseline automatic I/O lower bounds (paper §6.3) and ground-truth
//! oracles.
//!
//! * [`maxflow`] — a from-scratch Dinic max-flow solver.
//! * [`convex_mincut`] — a reconstruction of the Elango et al. convex
//!   min-cut baseline: for each vertex `v`, a vertex-capacity min cut
//!   computes the smallest possible *wavefront* of any schedule prefix
//!   that has finished `v` but none of its descendants; the bound is
//!   `max_v 2·max(0, C(v) − M)`. See `DESIGN.md` §4 for the soundness
//!   argument and the relation to the original method.
//! * [`exact`] — exhaustive branch-and-bound computing the *true* optimal
//!   non-trivial I/O `J*_G` for tiny graphs; the ground truth every lower
//!   bound is tested against.

pub mod convex_mincut;
pub mod exact;
pub mod maxflow;

pub use convex_mincut::{convex_min_cut_bound, ConvexMinCutOptions, ConvexMinCutResult};
pub use exact::{exact_optimal_io, ExactError, ExactResult};
pub use maxflow::FlowNetwork;
