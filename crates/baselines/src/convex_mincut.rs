//! The convex min-cut automatic lower bound (Elango et al. \[13\],
//! reconstructed — see `DESIGN.md` §3–4).
//!
//! For each vertex `v`, consider the instant an evaluation order finishes
//! `v`: the set `S` of already-evaluated vertices is a *convex* (down-
//! closed) prefix containing `Anc(v) ∪ {v}` and no strict descendant of
//! `v`. Every vertex of the wavefront
//! `W(S) = {u ∈ S : ∃(u,w) ∈ E, w ∉ S}` holds a value still needed later,
//! so at least `|W(S)| − M` of them were spilled and must be re-read:
//! `J_G(X) ≥ 2(|W(S)| − M)`.
//!
//! The smallest wavefront any such prefix can have is lower-bounded by the
//! minimum vertex cut `C(v)` separating `Anc(v) ∪ {v}` from `Desc(v)` in
//! the split-vertex network (every wavefront severs all ancestor→descendant
//! paths), so `J*_G ≥ max_v 2·max(0, C(v) − M)` — matching the shape
//! `max_v max(0, 2(C(v,G) − M))` the paper reports for \[13\].

use crate::maxflow::{FlowNetwork, INF};
use graphio_graph::CompGraph;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// Above this vertex count [`ConvexMinCutOptions::for_graph_size`] samples
/// only a handful of vertices and [`wavefront_cut`] caps each max-flow at
/// [`HUGE_FLOW_CAP`] — the baseline becomes a coarse (still valid) lower
/// bound whose job is to not stall a million-vertex analyze. Matches the
/// spectral layer's huge-tier cutoff.
pub const HUGE_SWEEP_CUTOFF: usize = 100_000;

/// Per-vertex flow cap above [`HUGE_SWEEP_CUTOFF`] (see [`wavefront_cut`]).
pub const HUGE_FLOW_CAP: u64 = 32;

/// Vertex-sweep strategy for the per-vertex min cuts.
#[derive(Debug, Clone)]
pub enum VertexSweep {
    /// Evaluate every vertex (the full baseline).
    All,
    /// Evaluate a deterministic random sample of this many vertices —
    /// still a sound lower bound (the true baseline maximizes over more
    /// vertices), used to keep huge graphs tractable exactly as wall-clock
    /// cutoffs did in the paper's evaluation.
    Sample {
        /// Number of vertices to evaluate.
        count: usize,
        /// Sampling seed.
        seed: u64,
    },
}

/// Options for [`convex_min_cut_bound`].
#[derive(Debug, Clone)]
pub struct ConvexMinCutOptions {
    /// Which vertices to sweep.
    pub sweep: VertexSweep,
    /// Worker threads for the per-vertex sweep (1 = serial).
    pub threads: usize,
}

impl Default for ConvexMinCutOptions {
    fn default() -> Self {
        ConvexMinCutOptions {
            sweep: VertexSweep::All,
            threads: std::thread::available_parallelism().map_or(1, |p| p.get()),
        }
    }
}

impl ConvexMinCutOptions {
    /// Sweep settings scaled to graph size — the single tuning schedule
    /// shared by the CLI and the bench harness: the full per-vertex sweep
    /// above a few thousand vertices is replaced by a deterministic
    /// 512-vertex sample (still a sound lower bound; the true baseline
    /// maximizes over more vertices), standing in for the wall-clock
    /// cutoffs the paper applied to this method.
    pub fn for_graph_size(n: usize) -> Self {
        ConvexMinCutOptions {
            sweep: if n > HUGE_SWEEP_CUTOFF {
                VertexSweep::Sample {
                    count: 4,
                    seed: 0xC07,
                }
            } else if n > 3000 {
                VertexSweep::Sample {
                    count: 512,
                    seed: 0xC07,
                }
            } else {
                VertexSweep::All
            },
            ..Default::default()
        }
    }
}

/// Result of the convex min-cut baseline.
#[derive(Debug, Clone, PartialEq)]
pub struct ConvexMinCutResult {
    /// The lower bound `max_v 2·max(0, C(v) − M)`.
    pub bound: u64,
    /// A vertex attaining the maximum cut value.
    pub best_vertex: usize,
    /// The maximum cut value `max_v C(v)` observed.
    pub max_cut: u64,
    /// Number of vertices actually evaluated.
    pub vertices_evaluated: usize,
}

/// Computes the convex min-cut lower bound on non-trivial I/O.
pub fn convex_min_cut_bound(
    g: &CompGraph,
    memory: usize,
    opts: &ConvexMinCutOptions,
) -> ConvexMinCutResult {
    let n = g.n();
    if n == 0 {
        return ConvexMinCutResult {
            bound: 0,
            best_vertex: 0,
            max_cut: 0,
            vertices_evaluated: 0,
        };
    }
    let vertices: Vec<usize> = match &opts.sweep {
        VertexSweep::All => (0..n).collect(),
        VertexSweep::Sample { count, seed } => {
            let mut all: Vec<usize> = (0..n).collect();
            let mut rng = StdRng::seed_from_u64(*seed);
            all.shuffle(&mut rng);
            all.truncate((*count).max(1).min(n));
            all
        }
    };

    let threads = opts.threads.max(1).min(vertices.len().max(1));
    let results: Vec<(usize, u64)> = if threads == 1 {
        vertices.iter().map(|&v| (v, wavefront_cut(g, v))).collect()
    } else {
        let chunk = vertices.len().div_ceil(threads);
        let mut out: Vec<(usize, u64)> = Vec::with_capacity(vertices.len());
        std::thread::scope(|s| {
            let handles: Vec<_> = vertices
                .chunks(chunk)
                .map(|vs| {
                    s.spawn(move || {
                        vs.iter()
                            .map(|&v| (v, wavefront_cut(g, v)))
                            .collect::<Vec<_>>()
                    })
                })
                .collect();
            for h in handles {
                out.extend(h.join().expect("min-cut worker panicked"));
            }
        });
        out
    };

    let mut best_vertex = results[0].0;
    let mut max_cut = 0u64;
    for &(v, c) in &results {
        if c > max_cut {
            max_cut = c;
            best_vertex = v;
        }
    }
    let bound = 2 * max_cut.saturating_sub(memory as u64);
    ConvexMinCutResult {
        bound,
        best_vertex,
        max_cut,
        vertices_evaluated: results.len(),
    }
}

/// The minimum wavefront `C(v)` over *convex* (down-closed) schedule
/// prefixes `S` with `Anc(v) ∪ {v} ⊆ S` and `Desc(v) ∩ S = ∅`, computed
/// exactly as a projection/closure-style min cut.
///
/// Encoding (s-side of the cut = "u ∈ S"):
/// * `s → a` (∞) pins `a ∈ Anc(v) ∪ {v}` into `S`; `d → t` (∞) pins the
///   strict descendants into `T`;
/// * each graph edge `(u, w)` adds the implication arc `w → u` (∞):
///   cutting it would mean `w ∈ S` with parent `u ∈ T`, which would break
///   down-closedness, so no finite cut does;
/// * each vertex `u` with children gets a gadget `u → c_u` (capacity 1)
///   and `c_u → w` (∞) for every child `w`: the unit arc must be cut
///   exactly when `u ∈ S` has some child in `T` — i.e. when `u` is in the
///   wavefront — and is counted once however many children cross.
///
/// A plain reachability cut (without the implication arcs) is useless
/// here: on unique-path networks like the butterfly every
/// ancestor-to-descendant path runs through `v` itself, collapsing the cut
/// to 1. Down-closedness is what forces wide wavefronts.
///
/// Above [`HUGE_SWEEP_CUTOFF`] vertices each max-flow is capped at
/// [`HUGE_FLOW_CAP`]: a capped Dinic run still yields a valid flow, and
/// any flow value lower-bounds the true wavefront, so the baseline stays
/// a certified lower bound — it just stops tightening past the cap (the
/// huge-scale analog of the paper's §6.5 wall-clock cutoffs). The cap is
/// a pure function of the graph size, so results stay deterministic per
/// graph and cache keys need no new fields.
pub fn wavefront_cut(g: &CompGraph, v: usize) -> u64 {
    let desc = g.descendants(v);
    if desc.is_empty() {
        return 0;
    }
    let anc = g.ancestors(v);
    let n = g.n();
    // Node layout: vertex u -> u, gadget c_u -> n + u, s -> 2n, t -> 2n+1.
    let s = 2 * n;
    let t = 2 * n + 1;
    let mut net = FlowNetwork::new(2 * n + 2);
    for u in 0..n {
        if g.out_degree(u) > 0 {
            net.add_edge(u, n + u, 1);
        }
    }
    for (u, w) in g.edges() {
        net.add_edge(n + u, w, INF); // penalty gadget reaches the child
        net.add_edge(w, u, INF); // down-closure implication
    }
    net.add_edge(s, v, INF);
    for &a in &anc {
        net.add_edge(s, a, INF);
    }
    for &d in &desc {
        net.add_edge(d, t, INF);
    }
    let cap = if n > HUGE_SWEEP_CUTOFF {
        HUGE_FLOW_CAP
    } else {
        u64::MAX
    };
    net.max_flow_capped(s, t, cap)
}

#[cfg(test)]
mod tests {
    use super::*;
    use graphio_graph::generators::{
        bhk_hypercube, fft_butterfly, inner_product, naive_matmul, path_dag,
    };

    #[test]
    fn paths_have_unit_cuts() {
        let g = path_dag(10);
        // Any interior vertex separates the chain with wavefront 1.
        for v in 0..9 {
            assert_eq!(wavefront_cut(&g, v), 1, "v={v}");
        }
        // The sink has no descendants.
        assert_eq!(wavefront_cut(&g, 9), 0);
    }

    #[test]
    fn naive_matmul_is_trivial() {
        // The paper reports the convex min-cut baseline is trivial on the
        // naive matmul graph: wavefronts localize to a handful of values
        // (the fan-in of one product), so C(v) stays O(1) and any
        // realistic M swallows the bound.
        for n in [2usize, 3, 4] {
            let g = naive_matmul(n);
            let r = convex_min_cut_bound(&g, 0, &ConvexMinCutOptions::default());
            assert!(r.max_cut <= 4, "n={n}: max_cut={}", r.max_cut);
            let r_m4 = convex_min_cut_bound(&g, 4, &ConvexMinCutOptions::default());
            assert_eq!(r_m4.bound, 0, "n={n}");
        }
    }

    #[test]
    fn inner_product_cut_values() {
        let g = inner_product(2);
        // Products: ancestors are 2 inputs; the only descendant is the
        // sum, fed through the product itself... and through nothing else:
        // C = 1.
        assert_eq!(wavefront_cut(&g, 4), 1);
        // Inputs: single path to the sum through one product: C = 1.
        assert_eq!(wavefront_cut(&g, 0), 1);
        // Sum: no descendants.
        assert_eq!(wavefront_cut(&g, 6), 0);
    }

    #[test]
    fn fft_middle_vertices_have_growing_cuts() {
        // Butterfly mixing gives mid-graph vertices wavefronts that grow
        // with l — the reconstruction must be non-trivial on FFT.
        let c4 = {
            let g = fft_butterfly(4);
            convex_min_cut_bound(&g, 0, &ConvexMinCutOptions::default()).max_cut
        };
        let c6 = {
            let g = fft_butterfly(6);
            convex_min_cut_bound(&g, 0, &ConvexMinCutOptions::default()).max_cut
        };
        assert!(c4 >= 4, "c4={c4}");
        assert!(c6 > c4, "c6={c6} c4={c4}");
    }

    #[test]
    fn hypercube_cut_scales_with_dimension() {
        let c3 = {
            let g = bhk_hypercube(3);
            convex_min_cut_bound(&g, 0, &ConvexMinCutOptions::default()).max_cut
        };
        let c5 = {
            let g = bhk_hypercube(5);
            convex_min_cut_bound(&g, 0, &ConvexMinCutOptions::default()).max_cut
        };
        assert!(c5 > c3, "c5={c5} c3={c3}");
    }

    #[test]
    fn bound_is_linear_in_memory() {
        let g = fft_butterfly(5);
        let r0 = convex_min_cut_bound(&g, 0, &ConvexMinCutOptions::default());
        let r2 = convex_min_cut_bound(&g, 2, &ConvexMinCutOptions::default());
        let r4 = convex_min_cut_bound(&g, 4, &ConvexMinCutOptions::default());
        assert_eq!(r0.bound - r2.bound, 4);
        assert_eq!(r2.bound - r4.bound, 4);
    }

    #[test]
    fn sampling_is_a_sound_relaxation() {
        let g = fft_butterfly(5);
        let full = convex_min_cut_bound(&g, 2, &ConvexMinCutOptions::default());
        let sampled = convex_min_cut_bound(
            &g,
            2,
            &ConvexMinCutOptions {
                sweep: VertexSweep::Sample { count: 20, seed: 3 },
                ..Default::default()
            },
        );
        assert!(sampled.bound <= full.bound);
        assert_eq!(sampled.vertices_evaluated, 20);
    }

    #[test]
    fn serial_and_parallel_sweeps_agree() {
        let g = bhk_hypercube(4);
        let serial = convex_min_cut_bound(
            &g,
            1,
            &ConvexMinCutOptions {
                threads: 1,
                sweep: VertexSweep::All,
            },
        );
        let parallel = convex_min_cut_bound(
            &g,
            1,
            &ConvexMinCutOptions {
                threads: 4,
                sweep: VertexSweep::All,
            },
        );
        assert_eq!(serial.bound, parallel.bound);
        assert_eq!(serial.max_cut, parallel.max_cut);
    }

    #[test]
    fn empty_graph() {
        let g = graphio_graph::GraphBuilder::new().build().unwrap();
        let r = convex_min_cut_bound(&g, 4, &ConvexMinCutOptions::default());
        assert_eq!(r.bound, 0);
    }
}
