//! Exact optimal non-trivial I/O for tiny graphs, by memoized
//! branch-and-bound over schedule prefixes and eviction choices.
//!
//! This is the ground truth `J*_G` of the paper's §3.1 optimization (the
//! quantity all lower bounds must stay below), tractable only for tiny
//! graphs — exactly the role the intractable 2S-partition ILP of \[12\]
//! would play, without needing an ILP solver.
//!
//! The search space is reduced by three optimality-preserving (WLOG)
//! normalizations:
//! * values whose consumers are all evaluated vacate fast memory
//!   immediately (free, never harmful);
//! * evictions happen lazily, and only the minimum number needed —
//!   spilling earlier or more costs the same write now without adding
//!   options later;
//! * a live value is written at most once (slow memory retains copies).

use graphio_graph::CompGraph;
use std::collections::HashMap;
use std::fmt;

/// Maximum graph size (vertex-set bitmask fits in `u32`).
pub const MAX_VERTICES: usize = 26;

/// Errors from [`exact_optimal_io`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ExactError {
    /// The graph exceeds [`MAX_VERTICES`].
    TooLarge {
        /// Actual vertex count.
        n: usize,
    },
    /// Some vertex cannot be evaluated at all in memory `M`.
    MemoryTooSmall {
        /// The offending vertex.
        vertex: usize,
        /// Distinct operands + result slot.
        required: usize,
        /// Fast memory supplied.
        memory: usize,
    },
    /// The memoization budget was exhausted before the search completed.
    BudgetExhausted {
        /// The state budget that was hit.
        states: usize,
    },
}

impl fmt::Display for ExactError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExactError::TooLarge { n } => {
                write!(
                    f,
                    "graph has {n} vertices; exact solver supports <= {MAX_VERTICES}"
                )
            }
            ExactError::MemoryTooSmall {
                vertex,
                required,
                memory,
            } => write!(f, "vertex {vertex} needs {required} slots but M = {memory}"),
            ExactError::BudgetExhausted { states } => {
                write!(f, "exceeded the {states}-state search budget")
            }
        }
    }
}

impl std::error::Error for ExactError {}

/// Outcome of the exact search.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ExactResult {
    /// The optimal non-trivial I/O `J*_G`.
    pub io: u64,
    /// Number of distinct states memoized (search-effort indicator).
    pub states: usize,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
struct State {
    computed: u32,
    resident: u32,
    backed: u32,
}

struct Searcher {
    memory: usize,
    n: usize,
    full: u32,
    parent_mask: Vec<u32>,
    child_mask: Vec<u32>,
    memo: HashMap<State, u64>,
    budget: usize,
}

/// Computes the exact optimal non-trivial I/O of evaluating `g` with fast
/// memory `memory`.
///
/// `state_budget` caps the number of memoized states (a few hundred
/// thousand suffices for graphs of ~14 vertices with small `M`).
///
/// # Errors
/// [`ExactError::TooLarge`], [`ExactError::MemoryTooSmall`] or
/// [`ExactError::BudgetExhausted`].
pub fn exact_optimal_io(
    g: &CompGraph,
    memory: usize,
    state_budget: usize,
) -> Result<ExactResult, ExactError> {
    let n = g.n();
    if n > MAX_VERTICES {
        return Err(ExactError::TooLarge { n });
    }
    let mut parent_mask = vec![0u32; n];
    let mut child_mask = vec![0u32; n];
    for v in 0..n {
        for &p in g.parents(v) {
            parent_mask[v] |= 1 << p;
        }
        for &c in g.children(v) {
            child_mask[v] |= 1 << c;
        }
        let required = parent_mask[v].count_ones() as usize + 1;
        if required > memory {
            return Err(ExactError::MemoryTooSmall {
                vertex: v,
                required,
                memory,
            });
        }
    }
    let mut searcher = Searcher {
        memory,
        n,
        full: if n == 32 { u32::MAX } else { (1u32 << n) - 1 },
        parent_mask,
        child_mask,
        memo: HashMap::new(),
        budget: state_budget,
    };
    let io = searcher.solve(State {
        computed: 0,
        resident: 0,
        backed: 0,
    })?;
    Ok(ExactResult {
        io,
        states: searcher.memo.len(),
    })
}

impl Searcher {
    /// True iff `v`'s value can never be needed again once `computed`.
    fn is_dead(&self, v: usize, computed: u32) -> bool {
        self.child_mask[v] & !computed == 0
    }

    fn solve(&mut self, state: State) -> Result<u64, ExactError> {
        if state.computed == self.full {
            return Ok(0);
        }
        if let Some(&c) = self.memo.get(&state) {
            return Ok(c);
        }
        if self.memo.len() >= self.budget {
            return Err(ExactError::BudgetExhausted {
                states: self.budget,
            });
        }
        // Reserve the slot first so the budget check sees this state.
        self.memo.insert(state, u64::MAX);

        let mut best = u64::MAX;
        for v in 0..self.n {
            let bit = 1u32 << v;
            if state.computed & bit != 0 || self.parent_mask[v] & !state.computed != 0 {
                continue; // already done, or not ready
            }
            let parents = self.parent_mask[v];
            let missing = parents & !state.resident;
            let reads = missing.count_ones() as u64;
            // All loaded parents + the result must coexist.
            let occupied_after = (state.resident | parents | bit).count_ones() as usize;
            let must_evict = occupied_after.saturating_sub(self.memory);
            let victims_pool = state.resident & !parents; // cannot evict pinned operands
            debug_assert!(victims_pool.count_ones() as usize >= must_evict);

            // Enumerate victim subsets of exactly `must_evict` vertices.
            let pool: Vec<usize> = (0..self.n)
                .filter(|&u| victims_pool & (1 << u) != 0)
                .collect();
            let mut chosen = vec![0usize; must_evict];
            best = best.min(self.try_victim_combos(state, v, reads, &pool, &mut chosen, 0, 0)?);
        }
        self.memo.insert(state, best);
        Ok(best)
    }

    /// Recursively enumerates `chosen.len()`-subsets of `pool` (victims),
    /// returning the best total cost.
    #[allow(clippy::too_many_arguments)]
    fn try_victim_combos(
        &mut self,
        state: State,
        v: usize,
        reads: u64,
        pool: &[usize],
        chosen: &mut Vec<usize>,
        start: usize,
        depth: usize,
    ) -> Result<u64, ExactError> {
        if depth == chosen.len() {
            return self.apply_transition(state, v, reads, chosen);
        }
        let mut best = u64::MAX;
        // Leave room for the remaining picks.
        let last = pool.len() - (chosen.len() - depth - 1);
        for (i, &u) in pool.iter().enumerate().take(last).skip(start) {
            chosen[depth] = u;
            let cost = self.try_victim_combos(state, v, reads, pool, chosen, i + 1, depth + 1)?;
            best = best.min(cost);
        }
        Ok(best)
    }

    fn apply_transition(
        &mut self,
        state: State,
        v: usize,
        reads: u64,
        victims: &[usize],
    ) -> Result<u64, ExactError> {
        let bit = 1u32 << v;
        let mut writes = 0u64;
        let mut backed = state.backed;
        let mut resident = state.resident | self.parent_mask[v] | bit;
        for &u in victims {
            let ub = 1u32 << u;
            // Victims are live by the eager-dead-drop invariant.
            if backed & ub == 0 {
                writes += 1;
                backed |= ub;
            }
            resident &= !ub;
        }
        let computed = state.computed | bit;
        // Eager dead-drop + canonicalize backed bits of dead values.
        let mut live = 0u32;
        for u in 0..self.n {
            if computed & (1 << u) != 0 && !self.is_dead(u, computed) {
                live |= 1 << u;
            }
        }
        resident &= live;
        backed &= live;
        let next = State {
            computed,
            resident,
            backed,
        };
        let tail = self.solve(next)?;
        Ok(tail.saturating_add(reads + writes))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use graphio_graph::generators::{binary_reduction_tree, diamond_dag, inner_product, path_dag};
    use graphio_graph::topo::natural_order;
    use graphio_pebble::{simulate, Policy};

    const BUDGET: usize = 2_000_000;

    #[test]
    fn path_is_free() {
        let g = path_dag(8);
        let r = exact_optimal_io(&g, 2, BUDGET).unwrap();
        assert_eq!(r.io, 0);
    }

    #[test]
    fn inner_product_exact_values() {
        let g = inner_product(2);
        // M = 3: both products cannot stay resident while the second is
        // built: exactly one spill + one reload.
        assert_eq!(exact_optimal_io(&g, 3, BUDGET).unwrap().io, 2);
        // M = 4: everything fits.
        assert_eq!(exact_optimal_io(&g, 4, BUDGET).unwrap().io, 0);
    }

    #[test]
    fn exact_never_exceeds_any_simulation() {
        for (g, m) in [
            // inner_product(3)'s 3-ary sum needs 4 slots to evaluate.
            (inner_product(3), 4usize),
            (diamond_dag(3, 3), 3),
            (binary_reduction_tree(3), 3),
        ] {
            let exact = exact_optimal_io(&g, m, BUDGET).unwrap().io;
            let order = natural_order(&g);
            for policy in Policy::ALL {
                let sim = simulate(&g, &order, m, policy, 0).unwrap();
                assert!(
                    exact <= sim.io(),
                    "exact {} > {} sim {}",
                    exact,
                    policy,
                    sim.io()
                );
            }
        }
    }

    #[test]
    fn exact_matches_good_simulation_when_memory_ample() {
        let g = binary_reduction_tree(3);
        let exact = exact_optimal_io(&g, g.n(), BUDGET).unwrap().io;
        assert_eq!(exact, 0);
    }

    #[test]
    fn memory_too_small_detected() {
        let g = inner_product(2);
        assert_eq!(
            exact_optimal_io(&g, 2, BUDGET).unwrap_err(),
            ExactError::MemoryTooSmall {
                vertex: 4,
                required: 3,
                memory: 2
            }
        );
    }

    #[test]
    fn too_large_detected() {
        let g = binary_reduction_tree(5); // 63 vertices
        assert_eq!(
            exact_optimal_io(&g, 8, BUDGET).unwrap_err(),
            ExactError::TooLarge { n: 63 }
        );
    }

    #[test]
    fn budget_exhaustion_detected() {
        let g = diamond_dag(4, 4);
        assert!(matches!(
            exact_optimal_io(&g, 3, 10),
            Err(ExactError::BudgetExhausted { states: 10 })
        ));
    }

    #[test]
    fn monotone_in_memory() {
        let g = diamond_dag(3, 4);
        let mut prev = u64::MAX;
        for m in 3..=8 {
            let io = exact_optimal_io(&g, m, BUDGET).unwrap().io;
            assert!(io <= prev, "M={m}");
            prev = io;
        }
        assert_eq!(prev, 0);
    }

    #[test]
    fn squaring_graph_is_free() {
        use graphio_graph::{GraphBuilder, OpKind};
        let mut b = GraphBuilder::new();
        let x = b.add_vertex(OpKind::Input);
        let sq = b.add_vertex(OpKind::Mul);
        b.add_edge(x, sq);
        b.add_edge(x, sq);
        let g = b.build().unwrap();
        assert_eq!(exact_optimal_io(&g, 2, BUDGET).unwrap().io, 0);
    }
}
