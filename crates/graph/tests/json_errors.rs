//! Error-path coverage for the JSON edge-list interchange format: the
//! analysis service feeds untrusted request bodies through these parsers,
//! so every malformed shape must fail with a clean `JsonError` (or
//! `GraphError` at graph-build time), never a panic.

use graphio_graph::json::parse;
use graphio_graph::{CompGraph, EdgeListGraph, GraphError, OpKind};

fn valid() -> &'static str {
    r#"{"ops":["Input","Input","Add"],"edges":[[0,2],[1,2]]}"#
}

#[test]
fn valid_document_parses() {
    let el = EdgeListGraph::from_json(valid()).unwrap();
    assert_eq!(el.ops.len(), 3);
    assert_eq!(el.edges, vec![(0, 2), (1, 2)]);
}

#[test]
fn truncated_inputs_fail_with_offsets() {
    let full = valid();
    // Every proper prefix must fail cleanly — nothing panics, nothing
    // half-parses.
    for end in 0..full.len() {
        let err = EdgeListGraph::from_json(&full[..end])
            .expect_err(&format!("prefix of {end} bytes must fail"));
        assert!(!err.message.is_empty());
    }
}

#[test]
fn trailing_garbage_is_rejected() {
    let doc = format!("{} trailing", valid());
    let err = EdgeListGraph::from_json(&doc).unwrap_err();
    assert!(err.message.contains("trailing"), "{err}");
    assert!(err.offset > 0);
}

#[test]
fn non_numeric_ids_are_rejected() {
    for bad in [
        r#"{"ops":["Input","Add"],"edges":[["0",1]]}"#,
        r#"{"ops":["Input","Add"],"edges":[[0,null]]}"#,
        r#"{"ops":["Input","Add"],"edges":[[0.5,1]]}"#,
        r#"{"ops":["Input","Add"],"edges":[[-1,1]]}"#,
        r#"{"ops":["Input","Add"],"edges":[[0,4294967296]]}"#,
    ] {
        let err = EdgeListGraph::from_json(bad).unwrap_err();
        assert!(err.message.contains("u32"), "{bad}: {err}");
    }
}

#[test]
fn malformed_ops_are_rejected() {
    for bad in [
        r#"{"ops":["NotAnOp"],"edges":[]}"#,
        r#"{"ops":[42],"edges":[]}"#,
        r#"{"ops":[{"Custom":"x"}],"edges":[]}"#,
        r#"{"ops":[{"Custom":-3}],"edges":[]}"#,
    ] {
        assert!(EdgeListGraph::from_json(bad).is_err(), "{bad}");
    }
}

#[test]
fn missing_sections_are_rejected() {
    assert!(EdgeListGraph::from_json(r#"{"edges":[]}"#).is_err());
    assert!(EdgeListGraph::from_json(r#"{"ops":[]}"#).is_err());
    assert!(EdgeListGraph::from_json(r#"[]"#).is_err());
}

#[test]
fn self_loops_fail_at_graph_build() {
    // The edge list parses (the format is just pairs) but the DAG
    // invariant rejects it.
    let el = EdgeListGraph::from_json(r#"{"ops":["Add"],"edges":[[0,0]]}"#).unwrap();
    assert_eq!(
        CompGraph::try_from(el).unwrap_err(),
        GraphError::SelfLoop { id: 0 }
    );
}

#[test]
fn out_of_range_edges_fail_at_graph_build() {
    let el = EdgeListGraph::from_json(r#"{"ops":["Input","Add"],"edges":[[0,7]]}"#).unwrap();
    assert_eq!(
        CompGraph::try_from(el).unwrap_err(),
        GraphError::InvalidVertex { id: 7, n: 2 }
    );
}

#[test]
fn duplicate_edges_are_parallel_edges_not_errors() {
    // `x * x` consumes the same operand twice: the format must preserve
    // duplicate pairs, and the graph must keep both.
    let el = EdgeListGraph::from_json(r#"{"ops":["Input","Mul"],"edges":[[0,1],[0,1]]}"#).unwrap();
    assert_eq!(el.edges, vec![(0, 1), (0, 1)]);
    let g = CompGraph::try_from(el).unwrap();
    assert_eq!(g.num_edges(), 2);
    assert_eq!(g.in_degree(1), 2);
}

#[test]
fn from_json_value_matches_from_json() {
    let doc = parse(valid()).unwrap();
    assert_eq!(
        EdgeListGraph::from_json_value(&doc).unwrap(),
        EdgeListGraph::from_json(valid()).unwrap()
    );
    // A schema mismatch through the value path too.
    let bad = parse(r#"{"ops":"nope","edges":[]}"#).unwrap();
    assert!(EdgeListGraph::from_json_value(&bad).is_err());
}

#[test]
fn deep_nesting_and_odd_scalars_do_not_panic() {
    let deep = format!("{}1{}", "[".repeat(2000), "]".repeat(2000));
    let _ = parse(&deep); // must terminate without stack abuse either way
    for odd in ["1e309", "-0", "\"\\u0041\"", "\"\\uZZZZ\"", "nul", "tru"] {
        let _ = parse(odd); // ok or clean error, never a panic
    }
    assert_eq!(
        EdgeListGraph::from_json(r#"{"ops":[],"edges":[]}"#).unwrap(),
        EdgeListGraph {
            ops: vec![],
            edges: vec![]
        }
    );
    let _ = OpKind::from_json(&parse(r#"{"Custom":1.5}"#).unwrap());
}
