//! Property-based tests for computation-graph invariants.

use graphio_graph::generators::{
    bhk_hypercube, binary_reduction_tree, diamond_dag, erdos_renyi_dag, fft_butterfly,
    inner_product, layered_random_dag, naive_matmul, naive_matmul_binary_tree, strassen_matmul,
};
use graphio_graph::topo::{bfs_order, dfs_order, natural_order, random_order};
use graphio_graph::{CompGraph, EdgeListGraph, GraphBuilder, OpKind};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// A strategy generating one graph from every family at a random small
/// size, so each property sweeps the whole generator zoo.
fn any_generated_graph() -> impl Strategy<Value = CompGraph> {
    (0usize..10, 0u64..1000).prop_map(|(which, seed)| match which {
        0 => fft_butterfly(1 + (seed as usize % 5)),
        1 => bhk_hypercube(1 + (seed as usize % 6)),
        2 => naive_matmul(1 + (seed as usize % 4)),
        3 => naive_matmul_binary_tree(1 + (seed as usize % 4)),
        4 => strassen_matmul(1 << (seed as usize % 3)),
        5 => inner_product(1 + (seed as usize % 8)),
        6 => diamond_dag(1 + (seed as usize % 5), 1 + (seed as usize / 7 % 5)),
        7 => binary_reduction_tree(seed as usize % 6),
        8 => erdos_renyi_dag(2 + (seed as usize % 30), 0.3, seed),
        _ => layered_random_dag(1 + (seed as usize % 4), 1 + (seed as usize % 6), 0.5, seed),
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn all_topological_order_heuristics_are_valid(g in any_generated_graph(), seed in 0u64..100) {
        prop_assert!(g.is_topological(&natural_order(&g)));
        prop_assert!(g.is_topological(&dfs_order(&g)));
        prop_assert!(g.is_topological(&bfs_order(&g)));
        let mut rng = StdRng::seed_from_u64(seed);
        prop_assert!(g.is_topological(&random_order(&g, &mut rng)));
    }

    #[test]
    fn degree_sums_equal_edge_count(g in any_generated_graph()) {
        let in_sum: usize = (0..g.n()).map(|v| g.in_degree(v)).sum();
        let out_sum: usize = (0..g.n()).map(|v| g.out_degree(v)).sum();
        prop_assert_eq!(in_sum, g.num_edges());
        prop_assert_eq!(out_sum, g.num_edges());
    }

    #[test]
    fn sources_are_inputs_with_no_parents(g in any_generated_graph()) {
        for v in g.sources() {
            prop_assert!(g.parents(v).is_empty());
            prop_assert_eq!(g.in_degree(v), 0);
        }
        for v in g.sinks() {
            prop_assert!(g.children(v).is_empty());
        }
    }

    #[test]
    fn adjacency_is_mutually_consistent(g in any_generated_graph()) {
        // u lists v as child exactly as often as v lists u as parent.
        for u in 0..g.n() {
            for &v in g.children(u) {
                let forward = g.children(u).iter().filter(|&&w| w == v).count();
                let backward = g.parents(v as usize).iter().filter(|&&w| w as usize == u).count();
                prop_assert_eq!(forward, backward);
            }
        }
    }

    #[test]
    fn edge_list_roundtrip_preserves_structure(g in any_generated_graph()) {
        let el = g.to_edge_list();
        let back = CompGraph::try_from(el).unwrap();
        prop_assert_eq!(g.n(), back.n());
        prop_assert_eq!(g.num_edges(), back.num_edges());
        for v in 0..g.n() {
            let mut a: Vec<u32> = g.parents(v).to_vec();
            let mut b: Vec<u32> = back.parents(v).to_vec();
            a.sort_unstable();
            b.sort_unstable();
            prop_assert_eq!(a, b);
            prop_assert_eq!(g.op(v), back.op(v));
        }
    }

    #[test]
    fn ancestors_and_descendants_are_dual(g in any_generated_graph(), pick in 0usize..64) {
        if g.n() == 0 {
            return Ok(());
        }
        let v = pick % g.n();
        for &a in g.ancestors(v).iter() {
            prop_assert!(g.descendants(a).contains(&v), "v={v} a={a}");
        }
        for &d in g.descendants(v).iter() {
            prop_assert!(g.ancestors(d).contains(&v), "v={v} d={d}");
        }
    }

    #[test]
    fn json_roundtrip(g in any_generated_graph()) {
        let el = g.to_edge_list();
        let json = el.to_json();
        let back = EdgeListGraph::from_json(&json).unwrap();
        prop_assert_eq!(el, back);
    }

    #[test]
    fn builder_detects_injected_cycles(
        n in 2usize..10,
        edges in proptest::collection::vec((0usize..10, 0usize..10), 1..20),
    ) {
        // Take a DAG orientation (low -> high), then close a cycle.
        let mut b = GraphBuilder::new();
        for _ in 0..n {
            b.add_vertex(OpKind::Add);
        }
        let mut has_forward = false;
        for (u, v) in edges {
            let (u, v) = (u % n, v % n);
            if u < v {
                b.add_edge(u as u32, v as u32);
                has_forward = true;
            }
        }
        if !has_forward {
            b.add_edge(0, (n - 1) as u32);
        }
        // Find some edge (u, v) and add the reverse path v -> u making a
        // 2-cycle at the graph level.
        b.add_edge((n - 1) as u32, 0);
        b.add_edge(0, (n - 1) as u32);
        prop_assert!(b.build().is_err());
    }
}
