//! Fingerprint near-collision regressions: the store and the service
//! cache both trust the WL fingerprint as a content address, so the
//! most dangerous failure is two *almost*-identical graphs hashing
//! together — a stored session would then silently answer for the wrong
//! graph. This corpus takes every generator-zoo family and perturbs it
//! by exactly one edge, one parallel edge, or one operation label, and
//! asserts the fingerprint moves every time.

use graphio_graph::generators::{
    bhk_hypercube, binary_reduction_tree, diamond_dag, erdos_renyi_dag, fft_butterfly,
    inner_product, layered_random_dag, naive_matmul, naive_matmul_binary_tree, strassen_matmul,
};
use graphio_graph::{
    decompose, fingerprint, induced_subgraph, CompGraph, DecomposeOptions, EdgeListGraph,
    Fingerprint, OpKind,
};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

fn any_generated_graph() -> impl Strategy<Value = CompGraph> {
    (0usize..10, 0u64..1000).prop_map(|(which, seed)| match which {
        0 => fft_butterfly(1 + (seed as usize % 5)),
        1 => bhk_hypercube(1 + (seed as usize % 6)),
        2 => naive_matmul(1 + (seed as usize % 4)),
        3 => naive_matmul_binary_tree(1 + (seed as usize % 4)),
        4 => strassen_matmul(1 << (seed as usize % 3)),
        5 => inner_product(1 + (seed as usize % 8)),
        6 => diamond_dag(1 + (seed as usize % 5), 1 + (seed as usize / 7 % 5)),
        7 => binary_reduction_tree(1 + seed as usize % 6),
        8 => erdos_renyi_dag(2 + (seed as usize % 30), 0.3, seed),
        _ => layered_random_dag(1 + (seed as usize % 4), 1 + (seed as usize % 6), 0.5, seed),
    })
}

fn rebuild(el: EdgeListGraph) -> CompGraph {
    CompGraph::try_from(el).expect("mutation keeps the graph valid")
}

/// Drops the edge at `index` (mod m).
fn drop_edge(g: &CompGraph, index: usize) -> Option<CompGraph> {
    let mut el = g.to_edge_list();
    if el.edges.is_empty() {
        return None;
    }
    let index = index % el.edges.len();
    el.edges.remove(index);
    Some(rebuild(el))
}

/// Duplicates the edge at `index` (mod m) — parallel edges never create
/// cycles, so this is always a valid one-edge-heavier twin.
fn duplicate_edge(g: &CompGraph, index: usize) -> Option<CompGraph> {
    let mut el = g.to_edge_list();
    if el.edges.is_empty() {
        return None;
    }
    let edge = el.edges[index % el.edges.len()];
    el.edges.push(edge);
    Some(rebuild(el))
}

/// Relabels the operation of vertex `v` (mod n) to something different.
fn flip_op(g: &CompGraph, v: usize) -> Option<CompGraph> {
    let mut el = g.to_edge_list();
    if el.ops.is_empty() {
        return None;
    }
    let v = v % el.ops.len();
    el.ops[v] = match el.ops[v] {
        // A one-step label change: Custom tags move by one, everything
        // else becomes a Custom label it never is organically.
        OpKind::Custom(tag) => OpKind::Custom(tag.wrapping_add(1)),
        _ => OpKind::Custom(0xDEAD),
    };
    Some(rebuild(el))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn one_edge_removed_changes_the_fingerprint(g in any_generated_graph(), at in 0usize..10_000) {
        if let Some(h) = drop_edge(&g, at) {
            prop_assert_ne!(fingerprint(&g), fingerprint(&h));
        }
    }

    #[test]
    fn one_parallel_edge_added_changes_the_fingerprint(g in any_generated_graph(), at in 0usize..10_000) {
        if let Some(h) = duplicate_edge(&g, at) {
            prop_assert_ne!(fingerprint(&g), fingerprint(&h));
        }
    }

    #[test]
    fn one_op_label_changed_changes_the_fingerprint(g in any_generated_graph(), at in 0usize..10_000) {
        if let Some(h) = flip_op(&g, at) {
            prop_assert_ne!(fingerprint(&g), fingerprint(&h));
        }
    }

    /// All three perturbations of one graph are also pairwise distinct —
    /// near-misses must not collide with *each other* either.
    #[test]
    fn perturbation_family_is_pairwise_distinct(g in any_generated_graph(), at in 0usize..10_000) {
        let mut fps = vec![fingerprint(&g)];
        fps.extend(drop_edge(&g, at).map(|h| fingerprint(&h)));
        fps.extend(duplicate_edge(&g, at).map(|h| fingerprint(&h)));
        fps.extend(flip_op(&g, at).map(|h| fingerprint(&h)));
        let mut dedup = fps.clone();
        dedup.sort_unstable();
        dedup.dedup();
        prop_assert_eq!(dedup.len(), fps.len(), "near-miss collision: {:?}", fps);
    }
}

/// Renumbers every vertex of `g` through the bijection `perm`.
fn relabel(g: &CompGraph, perm: &[u32]) -> CompGraph {
    let mut ops = vec![OpKind::Input; g.n()];
    for v in 0..g.n() {
        ops[perm[v] as usize] = g.op(v);
    }
    let edges = g
        .edges()
        .map(|(u, v)| (perm[u], perm[v]))
        .collect::<Vec<_>>();
    CompGraph::try_from(EdgeListGraph { ops, edges }).expect("relabeling preserves the DAG")
}

fn random_perm(n: usize, seed: u64) -> Vec<u32> {
    let mut perm: Vec<u32> = (0..n as u32).collect();
    perm.shuffle(&mut StdRng::seed_from_u64(seed));
    perm
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Compose-mode trust anchor: the per-component fingerprints the
    /// decomposition produces are pure functions of component structure.
    /// Renumbering the whole graph must keep every component's own
    /// fingerprint, and — for invariant decompositions — the component
    /// fingerprint *multiset* of the whole plan.
    #[test]
    fn decomposition_sub_fingerprints_survive_relabeling(
        g in any_generated_graph(),
        seed in 0u64..10_000,
    ) {
        if g.n() < 2 {
            return Ok(());
        }
        let opts = DecomposeOptions { target: (g.n() / 4).max(3) };
        let d = decompose(&g, &opts);
        // Each component's fingerprint is relabeling-invariant in its own
        // right (this is what lets a scattered backend recompute and
        // cross-check it from the subgraph alone).
        for comp in &d.components {
            let sub = induced_subgraph(&g, comp);
            let shuffled = relabel(&sub, &random_perm(sub.n(), seed));
            prop_assert_eq!(fingerprint(&sub), fingerprint(&shuffled));
        }
        let h = relabel(&g, &random_perm(g.n(), seed.wrapping_add(1)));
        let dh = decompose(&h, &opts);
        prop_assert_eq!(d.invariant, dh.invariant, "invariance flag must not depend on ids");
        if d.invariant {
            let fps = |g: &CompGraph, d: &graphio_graph::Decomposition| -> Vec<Fingerprint> {
                let mut f: Vec<Fingerprint> = d
                    .components
                    .iter()
                    .map(|c| fingerprint(&induced_subgraph(g, c)))
                    .collect();
                f.sort_unstable();
                f
            };
            prop_assert_eq!(fps(&g, &d), fps(&h, &dh));
            prop_assert_eq!(d.cut_edges, dh.cut_edges);
        }
    }
}

/// Cheap canonical invariants of a component: anything two subgraphs
/// sharing a fingerprint must also share. Disagreement here under an
/// equal fingerprint is a PROVEN collision (the subgraphs cannot be
/// isomorphic); agreement is consistent with the honest case — e.g.
/// `naive_matmul` and `naive_matmul_binary_tree` genuinely share their
/// input/product layers, and those components hashing together is the
/// compose cache's cross-graph dedup working as intended.
fn component_invariants(g: &CompGraph) -> (usize, usize, Vec<(String, usize, usize)>) {
    let mut profile: Vec<(String, usize, usize)> = (0..g.n())
        .map(|v| (g.op(v).mnemonic(), g.in_degree(v), g.children(v).len()))
        .collect();
    profile.sort_unstable();
    (g.n(), g.num_edges(), profile)
}

/// The compose cache and the router's ring both key sub-analyses by
/// component fingerprint, so structurally different components across
/// the generator zoo must never hash together — a collision would let
/// one family's cached spectra answer for another's. Fingerprint-equal
/// components are allowed only when every canonical invariant agrees
/// (isomorphic layers shared between families), and the corpus as a
/// whole must still spread over many distinct fingerprints.
#[test]
fn decomposition_corpus_sub_fingerprints_are_pairwise_distinct_across_families() {
    let zoo: Vec<(&str, CompGraph)> = vec![
        ("fft", fft_butterfly(5)),
        ("bhk", bhk_hypercube(4)),
        ("matmul", naive_matmul(3)),
        ("matmul_tree", naive_matmul_binary_tree(3)),
        ("strassen", strassen_matmul(2)),
        ("inner", inner_product(24)),
        ("diamond", diamond_dag(6, 8)),
        ("tree", binary_reduction_tree(6)),
    ];
    type Invariants = (usize, usize, Vec<(String, usize, usize)>);
    let mut seen: Vec<(Fingerprint, &str, Invariants)> = Vec::new();
    for (family, g) in &zoo {
        let d = decompose(
            g,
            &DecomposeOptions {
                target: (g.n() / 6).max(4),
            },
        );
        assert!(d.components.len() >= 2, "{family}: corpus graph too small");
        for comp in &d.components {
            let sub = induced_subgraph(g, comp);
            let fp = fingerprint(&sub);
            let inv = component_invariants(&sub);
            if let Some((_, other, prior)) = seen.iter().find(|(f, _, _)| *f == fp) {
                assert_eq!(
                    prior, &inv,
                    "proven sub-fingerprint collision: {family} vs {other} on {fp:?}"
                );
            } else {
                seen.push((fp, family, inv));
            }
        }
    }
    // No mass collapse: the zoo's components overwhelmingly get their
    // own addresses (shared layers between the two matmul variants are
    // the only expected overlap).
    let families_hit: std::collections::HashSet<&str> = seen.iter().map(|(_, f, _)| *f).collect();
    assert_eq!(
        families_hit.len(),
        zoo.len(),
        "every family contributes fresh fingerprints"
    );
    assert!(
        seen.len() >= 2 * zoo.len(),
        "only {} distinct sub-fingerprints across the corpus",
        seen.len()
    );
}

/// Deterministic spot checks of the classic traps, independent of the
/// property sweep above.
#[test]
fn classic_near_isomorphic_pairs_are_distinct() {
    // Same vertex set, one edge redirected.
    let base = diamond_dag(4, 4);
    let mut el = base.to_edge_list();
    let (from, to) = el.edges[0];
    // Redirect the first edge to another valid, later vertex.
    let new_to = (to + 1) % (el.ops.len() as u32);
    if new_to > from {
        el.edges[0] = (from, new_to);
        if let Ok(moved) = CompGraph::try_from(el) {
            assert_ne!(fingerprint(&base), fingerprint(&moved));
        }
    }

    // FFT stages differ by exactly one butterfly layer.
    assert_ne!(
        fingerprint(&fft_butterfly(4)),
        fingerprint(&fft_butterfly(5))
    );
    // Same shape, one Input vs Custom label at a single vertex.
    let a = inner_product(4);
    let b = flip_op(&a, 0).unwrap();
    assert_ne!(fingerprint(&a), fingerprint(&b));
}
