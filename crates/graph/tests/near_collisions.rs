//! Fingerprint near-collision regressions: the store and the service
//! cache both trust the WL fingerprint as a content address, so the
//! most dangerous failure is two *almost*-identical graphs hashing
//! together — a stored session would then silently answer for the wrong
//! graph. This corpus takes every generator-zoo family and perturbs it
//! by exactly one edge, one parallel edge, or one operation label, and
//! asserts the fingerprint moves every time.

use graphio_graph::generators::{
    bhk_hypercube, binary_reduction_tree, diamond_dag, erdos_renyi_dag, fft_butterfly,
    inner_product, layered_random_dag, naive_matmul, naive_matmul_binary_tree, strassen_matmul,
};
use graphio_graph::{fingerprint, CompGraph, EdgeListGraph, OpKind};
use proptest::prelude::*;

fn any_generated_graph() -> impl Strategy<Value = CompGraph> {
    (0usize..10, 0u64..1000).prop_map(|(which, seed)| match which {
        0 => fft_butterfly(1 + (seed as usize % 5)),
        1 => bhk_hypercube(1 + (seed as usize % 6)),
        2 => naive_matmul(1 + (seed as usize % 4)),
        3 => naive_matmul_binary_tree(1 + (seed as usize % 4)),
        4 => strassen_matmul(1 << (seed as usize % 3)),
        5 => inner_product(1 + (seed as usize % 8)),
        6 => diamond_dag(1 + (seed as usize % 5), 1 + (seed as usize / 7 % 5)),
        7 => binary_reduction_tree(1 + seed as usize % 6),
        8 => erdos_renyi_dag(2 + (seed as usize % 30), 0.3, seed),
        _ => layered_random_dag(1 + (seed as usize % 4), 1 + (seed as usize % 6), 0.5, seed),
    })
}

fn rebuild(el: EdgeListGraph) -> CompGraph {
    CompGraph::try_from(el).expect("mutation keeps the graph valid")
}

/// Drops the edge at `index` (mod m).
fn drop_edge(g: &CompGraph, index: usize) -> Option<CompGraph> {
    let mut el = g.to_edge_list();
    if el.edges.is_empty() {
        return None;
    }
    let index = index % el.edges.len();
    el.edges.remove(index);
    Some(rebuild(el))
}

/// Duplicates the edge at `index` (mod m) — parallel edges never create
/// cycles, so this is always a valid one-edge-heavier twin.
fn duplicate_edge(g: &CompGraph, index: usize) -> Option<CompGraph> {
    let mut el = g.to_edge_list();
    if el.edges.is_empty() {
        return None;
    }
    let edge = el.edges[index % el.edges.len()];
    el.edges.push(edge);
    Some(rebuild(el))
}

/// Relabels the operation of vertex `v` (mod n) to something different.
fn flip_op(g: &CompGraph, v: usize) -> Option<CompGraph> {
    let mut el = g.to_edge_list();
    if el.ops.is_empty() {
        return None;
    }
    let v = v % el.ops.len();
    el.ops[v] = match el.ops[v] {
        // A one-step label change: Custom tags move by one, everything
        // else becomes a Custom label it never is organically.
        OpKind::Custom(tag) => OpKind::Custom(tag.wrapping_add(1)),
        _ => OpKind::Custom(0xDEAD),
    };
    Some(rebuild(el))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn one_edge_removed_changes_the_fingerprint(g in any_generated_graph(), at in 0usize..10_000) {
        if let Some(h) = drop_edge(&g, at) {
            prop_assert_ne!(fingerprint(&g), fingerprint(&h));
        }
    }

    #[test]
    fn one_parallel_edge_added_changes_the_fingerprint(g in any_generated_graph(), at in 0usize..10_000) {
        if let Some(h) = duplicate_edge(&g, at) {
            prop_assert_ne!(fingerprint(&g), fingerprint(&h));
        }
    }

    #[test]
    fn one_op_label_changed_changes_the_fingerprint(g in any_generated_graph(), at in 0usize..10_000) {
        if let Some(h) = flip_op(&g, at) {
            prop_assert_ne!(fingerprint(&g), fingerprint(&h));
        }
    }

    /// All three perturbations of one graph are also pairwise distinct —
    /// near-misses must not collide with *each other* either.
    #[test]
    fn perturbation_family_is_pairwise_distinct(g in any_generated_graph(), at in 0usize..10_000) {
        let mut fps = vec![fingerprint(&g)];
        fps.extend(drop_edge(&g, at).map(|h| fingerprint(&h)));
        fps.extend(duplicate_edge(&g, at).map(|h| fingerprint(&h)));
        fps.extend(flip_op(&g, at).map(|h| fingerprint(&h)));
        let mut dedup = fps.clone();
        dedup.sort_unstable();
        dedup.dedup();
        prop_assert_eq!(dedup.len(), fps.len(), "near-miss collision: {:?}", fps);
    }
}

/// Deterministic spot checks of the classic traps, independent of the
/// property sweep above.
#[test]
fn classic_near_isomorphic_pairs_are_distinct() {
    // Same vertex set, one edge redirected.
    let base = diamond_dag(4, 4);
    let mut el = base.to_edge_list();
    let (from, to) = el.edges[0];
    // Redirect the first edge to another valid, later vertex.
    let new_to = (to + 1) % (el.ops.len() as u32);
    if new_to > from {
        el.edges[0] = (from, new_to);
        if let Ok(moved) = CompGraph::try_from(el) {
            assert_ne!(fingerprint(&base), fingerprint(&moved));
        }
    }

    // FFT stages differ by exactly one butterfly layer.
    assert_ne!(
        fingerprint(&fft_butterfly(4)),
        fingerprint(&fft_butterfly(5))
    );
    // Same shape, one Input vs Custom label at a single vertex.
    let a = inner_product(4);
    let b = flip_op(&a, 0).unwrap();
    assert_ne!(fingerprint(&a), fingerprint(&b));
}
