//! Graphviz (DOT) export for computation graphs.

use crate::dag::CompGraph;
use std::fmt::Write as _;

/// Options for [`to_dot`].
#[derive(Debug, Clone)]
pub struct DotOptions {
    /// Graph name in the DOT header.
    pub name: String,
    /// Include the vertex id next to the op mnemonic.
    pub show_ids: bool,
    /// Rank direction (`"TB"` top-to-bottom or `"LR"` left-to-right).
    pub rankdir: &'static str,
}

impl Default for DotOptions {
    fn default() -> Self {
        DotOptions {
            name: "computation".to_string(),
            show_ids: true,
            rankdir: "TB",
        }
    }
}

/// Renders the graph in Graphviz DOT format. Sources are drawn as boxes
/// (inputs), sinks as double circles (outputs), everything else as plain
/// circles.
pub fn to_dot(g: &CompGraph, opts: &DotOptions) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "digraph {} {{", opts.name);
    let _ = writeln!(out, "  rankdir={};", opts.rankdir);
    for v in 0..g.n() {
        let shape = if g.in_degree(v) == 0 {
            "box"
        } else if g.out_degree(v) == 0 {
            "doublecircle"
        } else {
            "circle"
        };
        let label = if opts.show_ids {
            format!("{}:{}", v, g.op(v).mnemonic())
        } else {
            g.op(v).mnemonic()
        };
        let _ = writeln!(out, "  v{v} [label=\"{label}\", shape={shape}];");
    }
    for (u, v) in g.edges() {
        let _ = writeln!(out, "  v{u} -> v{v};");
    }
    out.push_str("}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::inner_product;

    #[test]
    fn dot_contains_all_vertices_and_edges() {
        let g = inner_product(2);
        let dot = to_dot(&g, &DotOptions::default());
        assert!(dot.starts_with("digraph computation {"));
        for v in 0..g.n() {
            assert!(dot.contains(&format!("v{v} [label=")), "missing v{v}");
        }
        assert_eq!(dot.matches(" -> ").count(), g.num_edges());
        // Inputs boxed, output double-circled.
        assert!(dot.contains("shape=box"));
        assert!(dot.contains("shape=doublecircle"));
        assert!(dot.ends_with("}\n"));
    }

    #[test]
    fn ids_can_be_hidden() {
        let g = inner_product(1);
        let dot = to_dot(
            &g,
            &DotOptions {
                show_ids: false,
                ..Default::default()
            },
        );
        assert!(dot.contains("label=\"in\""));
        assert!(!dot.contains("label=\"0:in\""));
    }
}
