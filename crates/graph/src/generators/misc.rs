//! Small supporting computation-graph families: the paper's Figure 1 inner
//! product, plus standard I/O-complexity families (diamond/stencil DAGs,
//! reduction trees, paths, layered random DAGs) used by examples and tests.

use crate::dag::{CompGraph, GraphBuilder};
use crate::ops::OpKind;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Inner product of two `k`-element vectors (Figure 1 for `k = 2`):
/// `2k` inputs, `k` products, and one k-ary sum — `3k + 1` vertices.
pub fn inner_product(k: usize) -> CompGraph {
    assert!(k >= 1);
    let mut b = GraphBuilder::new();
    let xs: Vec<u32> = (0..k).map(|_| b.add_vertex(OpKind::Input)).collect();
    let ys: Vec<u32> = (0..k).map(|_| b.add_vertex(OpKind::Input)).collect();
    let prods: Vec<u32> = (0..k)
        .map(|i| {
            let p = b.add_vertex(OpKind::Mul);
            b.add_edge(xs[i], p);
            b.add_edge(ys[i], p);
            p
        })
        .collect();
    let s = b.add_vertex(OpKind::Sum);
    for p in prods {
        b.add_edge(p, s);
    }
    b.build().expect("inner product is acyclic")
}

/// An `rows × cols` diamond/stencil DAG: vertex `(i, j)` feeds `(i+1, j)`
/// and `(i, j+1)`. The top-left corner is the single input; the
/// bottom-right corner the single output. This is the classic dynamic-
/// programming dependency structure (edit distance, etc.).
pub fn diamond_dag(rows: usize, cols: usize) -> CompGraph {
    assert!(rows >= 1 && cols >= 1);
    let mut b = GraphBuilder::with_capacity(rows * cols, 2 * rows * cols);
    let id = |i: usize, j: usize| (i * cols + j) as u32;
    for i in 0..rows {
        for j in 0..cols {
            b.add_vertex(if i == 0 && j == 0 {
                OpKind::Input
            } else {
                OpKind::Add
            });
        }
    }
    for i in 0..rows {
        for j in 0..cols {
            if i + 1 < rows {
                b.add_edge(id(i, j), id(i + 1, j));
            }
            if j + 1 < cols {
                b.add_edge(id(i, j), id(i, j + 1));
            }
        }
    }
    b.build().expect("grid is acyclic")
}

/// A complete binary reduction tree over `2^depth` inputs (e.g. a max or
/// sum reduction): `2^{depth+1} − 1` vertices.
pub fn binary_reduction_tree(depth: usize) -> CompGraph {
    let leaves = 1usize << depth;
    let mut b = GraphBuilder::with_capacity(2 * leaves - 1, 2 * leaves - 2);
    let mut layer: Vec<u32> = (0..leaves).map(|_| b.add_vertex(OpKind::Input)).collect();
    while layer.len() > 1 {
        let mut next = Vec::with_capacity(layer.len() / 2);
        for pair in layer.chunks(2) {
            let v = b.add_vertex(OpKind::Add);
            b.add_edge(pair[0], v);
            b.add_edge(pair[1], v);
            next.push(v);
        }
        layer = next;
    }
    b.build().expect("tree is acyclic")
}

/// A simple dependency chain of `n` vertices (`v_0 → v_1 → … → v_{n−1}`).
pub fn path_dag(n: usize) -> CompGraph {
    assert!(n >= 1);
    let mut b = GraphBuilder::with_capacity(n, n - 1);
    b.add_vertex(OpKind::Input);
    for _ in 1..n {
        b.add_vertex(OpKind::Add);
    }
    for i in 0..(n - 1) {
        b.add_edge(i as u32, i as u32 + 1);
    }
    b.build().expect("path is acyclic")
}

/// A random layered DAG: `layers` layers of `width` vertices; each vertex
/// in layer `t+1` draws each potential parent from layer `t` independently
/// with probability `p` (and is guaranteed at least one parent so the
/// computation is well-formed).
pub fn layered_random_dag(layers: usize, width: usize, p: f64, seed: u64) -> CompGraph {
    assert!(layers >= 1 && width >= 1);
    assert!((0.0..=1.0).contains(&p));
    let mut rng = StdRng::seed_from_u64(seed);
    let mut b = GraphBuilder::new();
    let mut prev: Vec<u32> = (0..width).map(|_| b.add_vertex(OpKind::Input)).collect();
    for _ in 1..layers {
        let cur: Vec<u32> = (0..width)
            .map(|_| b.add_vertex(OpKind::Custom(1)))
            .collect();
        for &v in &cur {
            let mut has_parent = false;
            for &u in &prev {
                if rng.gen::<f64>() < p {
                    b.add_edge(u, v);
                    has_parent = true;
                }
            }
            if !has_parent {
                let u = prev[rng.gen_range(0..prev.len())];
                b.add_edge(u, v);
            }
        }
        prev = cur;
    }
    b.build().expect("layered construction is acyclic")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn inner_product_figure1() {
        let g = inner_product(2);
        assert_eq!(g.n(), 7);
        assert_eq!(g.num_edges(), 6);
        assert_eq!(g.sources().len(), 4);
        assert_eq!(g.sinks(), vec![6]);
    }

    #[test]
    fn inner_product_general_k() {
        for k in [1usize, 3, 8] {
            let g = inner_product(k);
            assert_eq!(g.n(), 3 * k + 1);
            assert_eq!(g.num_edges(), 3 * k);
            assert_eq!(g.in_degree(3 * k), k);
        }
    }

    #[test]
    fn diamond_counts_and_degrees() {
        let g = diamond_dag(3, 4);
        assert_eq!(g.n(), 12);
        // Edges: down (rows-1)*cols + right rows*(cols-1) = 2*4 + 3*3 = 17.
        assert_eq!(g.num_edges(), 17);
        assert_eq!(g.sources(), vec![0]);
        assert_eq!(g.sinks(), vec![11]);
        assert_eq!(g.max_in_degree(), 2);
        assert_eq!(g.max_out_degree(), 2);
    }

    #[test]
    fn reduction_tree_counts() {
        for depth in 0..6 {
            let g = binary_reduction_tree(depth);
            assert_eq!(g.n(), (2 << depth) - 1);
            assert_eq!(g.num_edges(), (2 << depth) - 2);
            assert_eq!(g.sinks().len(), 1);
        }
    }

    #[test]
    fn path_shape() {
        let g = path_dag(5);
        assert_eq!(g.n(), 5);
        assert_eq!(g.num_edges(), 4);
        assert_eq!(g.max_in_degree(), 1);
        assert_eq!(g.max_out_degree(), 1);
    }

    #[test]
    fn layered_random_every_noninput_has_a_parent() {
        let g = layered_random_dag(6, 9, 0.15, 123);
        assert_eq!(g.n(), 54);
        for v in 9..g.n() {
            assert!(g.in_degree(v) >= 1, "vertex {v} has no parent");
        }
        // Inputs have none.
        for v in 0..9 {
            assert_eq!(g.in_degree(v), 0);
        }
    }

    #[test]
    fn layered_random_is_deterministic() {
        let g1 = layered_random_dag(4, 5, 0.4, 9);
        let g2 = layered_random_dag(4, 5, 0.4, 9);
        let e1: Vec<_> = g1.edges().collect();
        let e2: Vec<_> = g2.edges().collect();
        assert_eq!(e1, e2);
    }
}
