//! Strassen matrix-multiplication computation graphs (paper §6.2, item 3).
//!
//! Strassen's recursion on `n = 2^m` matrices performs 7 half-size
//! multiplications on linear combinations of quadrants. At the scalar
//! level every matrix addition/subtraction of two `h × h` blocks is `h²`
//! binary vertices, and each output quadrant combination (`C11 = M1 + M4 −
//! M5 + M7`, `C22 = M1 − M2 + M3 + M6`) is a 4-ary [`OpKind::Sum`] vertex
//! per element — which is why the paper reports a maximum in-degree of 4
//! for this family.

use crate::dag::{CompGraph, GraphBuilder};
use crate::ops::OpKind;

/// Builds the computation graph of Strassen's algorithm multiplying two
/// `n × n` matrices, `n` a power of two.
///
/// Inputs are `2n²` vertices (`A` row-major, then `B` row-major).
///
/// # Panics
/// Panics if `n` is not a positive power of two.
pub fn strassen_matmul(n: usize) -> CompGraph {
    assert!(
        n >= 1 && n.is_power_of_two(),
        "strassen needs a power of two"
    );
    let mut b = GraphBuilder::new();
    let a: Vec<u32> = (0..n * n).map(|_| b.add_vertex(OpKind::Input)).collect();
    let bm: Vec<u32> = (0..n * n).map(|_| b.add_vertex(OpKind::Input)).collect();
    let c = strassen_rec(&mut b, &a, &bm, n);
    debug_assert_eq!(c.len(), n * n);
    b.build()
        .expect("strassen graph is acyclic by construction")
}

/// A block is a row-major vector of vertex ids.
type Block = Vec<u32>;

fn quadrant(m: &Block, size: usize, qi: usize, qj: usize) -> Block {
    let h = size / 2;
    let mut out = Vec::with_capacity(h * h);
    for i in 0..h {
        for j in 0..h {
            out.push(m[(qi * h + i) * size + (qj * h + j)]);
        }
    }
    out
}

fn elementwise(b: &mut GraphBuilder, op: OpKind, x: &Block, y: &Block) -> Block {
    debug_assert_eq!(x.len(), y.len());
    x.iter()
        .zip(y.iter())
        .map(|(&xi, &yi)| {
            let v = b.add_vertex(op);
            b.add_edge(xi, v);
            b.add_edge(yi, v);
            v
        })
        .collect()
}

/// 4-ary elementwise combination `t1 ± t2 ± t3 ± t4` as a single Sum
/// vertex per element (signs don't affect the graph).
fn combine4(b: &mut GraphBuilder, t1: &Block, t2: &Block, t3: &Block, t4: &Block) -> Block {
    (0..t1.len())
        .map(|i| {
            let v = b.add_vertex(OpKind::Sum);
            b.add_edge(t1[i], v);
            b.add_edge(t2[i], v);
            b.add_edge(t3[i], v);
            b.add_edge(t4[i], v);
            v
        })
        .collect()
}

fn strassen_rec(b: &mut GraphBuilder, a: &Block, bm: &Block, size: usize) -> Block {
    if size == 1 {
        let v = b.add_vertex(OpKind::Mul);
        b.add_edge(a[0], v);
        b.add_edge(bm[0], v);
        return vec![v];
    }
    let h = size / 2;
    let a11 = quadrant(a, size, 0, 0);
    let a12 = quadrant(a, size, 0, 1);
    let a21 = quadrant(a, size, 1, 0);
    let a22 = quadrant(a, size, 1, 1);
    let b11 = quadrant(bm, size, 0, 0);
    let b12 = quadrant(bm, size, 0, 1);
    let b21 = quadrant(bm, size, 1, 0);
    let b22 = quadrant(bm, size, 1, 1);

    // Strassen's seven products.
    let s1 = elementwise(b, OpKind::Add, &a11, &a22);
    let t1 = elementwise(b, OpKind::Add, &b11, &b22);
    let m1 = strassen_rec(b, &s1, &t1, h);

    let s2 = elementwise(b, OpKind::Add, &a21, &a22);
    let m2 = strassen_rec(b, &s2, &b11, h);

    let t3 = elementwise(b, OpKind::Sub, &b12, &b22);
    let m3 = strassen_rec(b, &a11, &t3, h);

    let t4 = elementwise(b, OpKind::Sub, &b21, &b11);
    let m4 = strassen_rec(b, &a22, &t4, h);

    let s5 = elementwise(b, OpKind::Add, &a11, &a12);
    let m5 = strassen_rec(b, &s5, &b22, h);

    let s6 = elementwise(b, OpKind::Sub, &a21, &a11);
    let t6 = elementwise(b, OpKind::Add, &b11, &b12);
    let m6 = strassen_rec(b, &s6, &t6, h);

    let s7 = elementwise(b, OpKind::Sub, &a12, &a22);
    let t7 = elementwise(b, OpKind::Add, &b21, &b22);
    let m7 = strassen_rec(b, &s7, &t7, h);

    // Output quadrants.
    let c11 = combine4(b, &m1, &m4, &m5, &m7);
    let c12 = elementwise(b, OpKind::Add, &m3, &m5);
    let c21 = elementwise(b, OpKind::Add, &m2, &m4);
    let c22 = combine4(b, &m1, &m2, &m3, &m6);

    // Assemble the full block row-major.
    let mut out = vec![0u32; size * size];
    for i in 0..h {
        for j in 0..h {
            out[i * size + j] = c11[i * h + j];
            out[i * size + (j + h)] = c12[i * h + j];
            out[(i + h) * size + j] = c21[i * h + j];
            out[(i + h) * size + (j + h)] = c22[i * h + j];
        }
    }
    out
}

/// Number of non-input vertices the Strassen recursion creates for size
/// `n`; useful for tests and capacity planning. Satisfies
/// `V(1) = 1`, `V(n) = 7·V(n/2) + 14·(n/2)²` — per recursion level there
/// are 10 elementwise pre-additions (the S/T operands of the 7 products)
/// and 4 output-quadrant combinations, each `(n/2)²` scalar vertices.
pub fn strassen_internal_vertex_count(n: usize) -> usize {
    if n == 1 {
        return 1;
    }
    let h = n / 2;
    7 * strassen_internal_vertex_count(h) + 14 * h * h
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn base_case_is_single_multiply() {
        let g = strassen_matmul(1);
        assert_eq!(g.n(), 3);
        assert_eq!(g.num_edges(), 2);
        assert_eq!(g.sinks().len(), 1);
        assert_eq!(g.op(2), OpKind::Mul);
    }

    #[test]
    fn vertex_count_matches_recurrence() {
        for n in [1usize, 2, 4, 8, 16] {
            let g = strassen_matmul(n);
            assert_eq!(
                g.n(),
                2 * n * n + strassen_internal_vertex_count(n),
                "n={n}"
            );
        }
    }

    #[test]
    fn max_in_degree_is_four() {
        for n in [2usize, 4, 8] {
            let g = strassen_matmul(n);
            assert_eq!(g.max_in_degree(), 4, "n={n}");
        }
    }

    #[test]
    fn output_count_is_n_squared() {
        for n in [2usize, 4] {
            let g = strassen_matmul(n);
            assert_eq!(g.sinks().len(), n * n, "n={n}");
        }
    }

    #[test]
    fn two_by_two_structure() {
        // n=2: 8 inputs; recursion: 7 muls, 10 elementwise pre-adds
        // (s1,t1,s2,t3,t4,s5,s6,t6,s7,t7), 4 output combinations
        // (c11, c12, c21, c22 — one scalar each at h=1).
        // Internal = 10 + 7 + 4 = 21 = V(2).
        assert_eq!(strassen_internal_vertex_count(2), 21);
        let g = strassen_matmul(2);
        assert_eq!(g.n(), 8 + 21);
        // in-degree-4 vertices are exactly c11 and c22.
        let quad_ins = (0..g.n()).filter(|&v| g.in_degree(v) == 4).count();
        assert_eq!(quad_ins, 2);
    }

    #[test]
    fn every_output_depends_on_inputs() {
        let n = 4;
        let g = strassen_matmul(n);
        for &s in &g.sinks() {
            let anc = g.ancestors(s);
            let inputs = anc.iter().filter(|&&v| v < 2 * n * n).count();
            // Each C_ij depends on at least one full row of A and column
            // of B (in fact more for Strassen); sanity-check non-trivial
            // dependence.
            assert!(inputs >= 2 * n, "sink {s} depends on {inputs} inputs");
        }
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn rejects_non_power_of_two() {
        strassen_matmul(6);
    }
}
