//! Naive matrix-multiplication computation graphs (paper §6.2, item 2).

use crate::dag::{CompGraph, GraphBuilder};
use crate::ops::OpKind;

/// Builds the computation graph of naive `n × n` matrix multiplication
/// `C = A·B`, computing each `C_ij` as a single n-ary summation of the
/// products `A_ik · B_kj`.
///
/// Structure (matching the paper's evaluation graph, whose stated maximum
/// in-degree is `n`):
/// * `2n²` input vertices (`A` row-major, then `B` row-major),
/// * `n³` product vertices (`in-degree 2`),
/// * `n²` n-ary [`OpKind::Sum`] output vertices (in-degree `n`).
///
/// Total: `n³ + 3n²` vertices and `3n³` edges.
pub fn naive_matmul(n: usize) -> CompGraph {
    build_matmul(n, SumShape::Nary)
}

/// Variant computing each `C_ij` with a binary reduction tree of
/// [`OpKind::Add`] vertices instead of one n-ary sum — an ablation for how
/// the graph encoding affects the spectral bound (max in-degree becomes 2,
/// so smaller fast memories remain admissible).
pub fn naive_matmul_binary_tree(n: usize) -> CompGraph {
    build_matmul(n, SumShape::BinaryTree)
}

enum SumShape {
    Nary,
    BinaryTree,
}

fn build_matmul(n: usize, shape: SumShape) -> CompGraph {
    assert!(n >= 1, "matmul needs n >= 1");
    let n2 = n * n;
    let n3 = n2 * n;
    let mut b = GraphBuilder::with_capacity(n3 + 3 * n2, 3 * n3);
    // Inputs: A then B, row-major.
    for _ in 0..(2 * n2) {
        b.add_vertex(OpKind::Input);
    }
    let a_id = |i: usize, k: usize| (i * n + k) as u32;
    let b_id = |k: usize, j: usize| (n2 + k * n + j) as u32;
    // One output at a time: its n products then its summation, matching the
    // natural loop nest a tracer would record.
    for i in 0..n {
        for j in 0..n {
            let terms: Vec<u32> = (0..n)
                .map(|k| {
                    let p = b.add_vertex(OpKind::Mul);
                    b.add_edge(a_id(i, k), p);
                    b.add_edge(b_id(k, j), p);
                    p
                })
                .collect();
            match shape {
                SumShape::Nary => {
                    if n == 1 {
                        // C_ij is just the single product; no sum vertex
                        // would change the value, but the paper's graph has
                        // one op per output, so keep a unary sum for shape
                        // consistency.
                        let s = b.add_vertex(OpKind::Sum);
                        b.add_edge(terms[0], s);
                    } else {
                        let s = b.add_vertex(OpKind::Sum);
                        for t in terms {
                            b.add_edge(t, s);
                        }
                    }
                }
                SumShape::BinaryTree => {
                    let mut layer = terms;
                    while layer.len() > 1 {
                        let mut next = Vec::with_capacity(layer.len().div_ceil(2));
                        for pair in layer.chunks(2) {
                            if pair.len() == 2 {
                                let s = b.add_vertex(OpKind::Add);
                                b.add_edge(pair[0], s);
                                b.add_edge(pair[1], s);
                                next.push(s);
                            } else {
                                next.push(pair[0]);
                            }
                        }
                        layer = next;
                    }
                    if layer.len() == 1 && n == 1 {
                        let s = b.add_vertex(OpKind::Sum);
                        b.add_edge(layer[0], s);
                    }
                }
            }
        }
    }
    b.build().expect("matmul graph is acyclic by construction")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nary_counts_match_formulas() {
        for n in [1usize, 2, 3, 4, 6] {
            let g = naive_matmul(n);
            assert_eq!(g.n(), n * n * n + 3 * n * n, "n={n}");
            let expected_edges = if n == 1 { 2 + 1 } else { 3 * n * n * n };
            assert_eq!(g.num_edges(), expected_edges, "edges n={n}");
        }
    }

    #[test]
    fn nary_max_in_degree_is_n() {
        for n in [2usize, 3, 5] {
            let g = naive_matmul(n);
            assert_eq!(g.max_in_degree(), n);
        }
    }

    #[test]
    fn inputs_products_outputs_partition() {
        let n = 3;
        let g = naive_matmul(n);
        assert_eq!(g.sources().len(), 2 * n * n);
        assert_eq!(g.sinks().len(), n * n);
        // Products have in-degree 2 and out-degree 1.
        let mut products = 0;
        for v in 0..g.n() {
            if g.op(v) == OpKind::Mul {
                assert_eq!(g.in_degree(v), 2);
                assert_eq!(g.out_degree(v), 1);
                products += 1;
            }
        }
        assert_eq!(products, n * n * n);
    }

    #[test]
    fn each_input_feeds_n_products() {
        let n = 4;
        let g = naive_matmul(n);
        for v in 0..(2 * n * n) {
            assert_eq!(g.out_degree(v), n, "input {v}");
        }
    }

    #[test]
    fn binary_tree_variant_has_in_degree_2() {
        for n in [2usize, 3, 4, 5, 8] {
            let g = naive_matmul_binary_tree(n);
            assert_eq!(g.max_in_degree(), 2, "n={n}");
            // Same number of products/inputs; n-1 adds per output.
            assert_eq!(g.n(), 2 * n * n + n * n * n + n * n * (n - 1));
            assert_eq!(g.sinks().len(), n * n);
        }
    }

    #[test]
    fn two_by_two_by_hand() {
        // n=2: 8 inputs, 8 products, 4 sums = 20 vertices, 24 edges.
        let g = naive_matmul(2);
        assert_eq!(g.n(), 20);
        assert_eq!(g.num_edges(), 24);
        // C_00's sum vertex should consume products A00*B00 and A01*B10.
        let sums = g.sinks();
        assert_eq!(sums.len(), 4);
        for &s in &sums {
            assert_eq!(g.op(s), OpKind::Sum);
            assert_eq!(g.in_degree(s), 2);
        }
    }
}
