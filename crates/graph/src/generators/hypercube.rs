//! The Bellman–Held–Karp hypercube computation graph (paper §5.1, Figure 4).

use crate::dag::{CompGraph, GraphBuilder};
use crate::ops::OpKind;

/// Builds the computation graph of the Bellman–Held–Karp dynamic program
/// for an `l`-city TSP: the boolean `l`-dimensional hypercube `Q_l`.
///
/// Vertex ids are the "cities visited" bitmasks `0..2^l`; there is an edge
/// `k1 → k2` whenever `k2` sets exactly one additional bit of `k1`. The
/// empty set (id 0) is the unique source and the full set (id `2^l − 1`)
/// the unique sink. `n = 2^l`, `|E| = l·2^{l−1}`, and both the maximum in-
/// and out-degree are `l`.
///
/// # Panics
/// Panics if `l >= 28`.
pub fn bhk_hypercube(l: usize) -> CompGraph {
    assert!(l < 28, "bhk_hypercube: l too large");
    let n = 1usize << l;
    let mut b = GraphBuilder::with_capacity(n, l * n / 2);
    b.add_vertex(OpKind::Input);
    for _ in 1..n {
        b.add_vertex(OpKind::BhkUpdate);
    }
    for u in 0..n {
        for bit in 0..l {
            if u & (1 << bit) == 0 {
                b.add_edge(u as u32, (u | (1 << bit)) as u32);
            }
        }
    }
    b.build().expect("hypercube is acyclic by popcount levels")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_match_formulas() {
        for l in 1..10 {
            let g = bhk_hypercube(l);
            assert_eq!(g.n(), 1 << l);
            assert_eq!(g.num_edges(), l << (l - 1), "edges for l={l}");
        }
    }

    #[test]
    fn degrees_equal_popcounts() {
        let l = 6;
        let g = bhk_hypercube(l);
        for v in 0..g.n() {
            let ones = (v as u32).count_ones() as usize;
            assert_eq!(g.in_degree(v), ones);
            assert_eq!(g.out_degree(v), l - ones);
        }
        assert_eq!(g.max_in_degree(), l);
        assert_eq!(g.max_out_degree(), l);
    }

    #[test]
    fn single_source_and_sink() {
        let g = bhk_hypercube(5);
        assert_eq!(g.sources(), vec![0]);
        assert_eq!(g.sinks(), vec![31]);
    }

    #[test]
    fn figure4_three_cities() {
        // Q_3: 8 vertices, 12 edges; 000 -> 111 paths of length 3.
        let g = bhk_hypercube(3);
        assert_eq!(g.n(), 8);
        assert_eq!(g.num_edges(), 12);
        // 011's parents are 001 and 010.
        let mut p: Vec<u32> = g.parents(0b011).to_vec();
        p.sort_unstable();
        assert_eq!(p, vec![0b001, 0b010]);
    }

    #[test]
    fn edges_set_exactly_one_bit() {
        let g = bhk_hypercube(4);
        for (u, v) in g.edges() {
            let diff = u ^ v;
            assert_eq!(diff.count_ones(), 1);
            assert_eq!(u & diff, 0, "edge must go from 0-bit to 1-bit");
        }
    }
}
