//! Erdős–Rényi random computation graphs (paper §5.3).
//!
//! `G(n, p)` is sampled on vertices `0..n` with each undirected pair
//! `{i, j}` included independently with probability `p`; edges are oriented
//! from the lower to the higher index, which makes the graph a DAG while
//! leaving the unnormalized Laplacian `L` — the object §5.3's probabilistic
//! bound analyzes — identical to that of the undirected sample.

use crate::dag::{CompGraph, GraphBuilder};
use crate::ops::OpKind;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Samples an Erdős–Rényi DAG `G(n, p)` with the given seed.
///
/// # Panics
/// Panics unless `0 ≤ p ≤ 1`.
pub fn erdos_renyi_dag(n: usize, p: f64, seed: u64) -> CompGraph {
    assert!((0.0..=1.0).contains(&p), "p must be a probability");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut b = GraphBuilder::new();
    for _ in 0..n {
        b.add_vertex(OpKind::Custom(0));
    }
    for i in 0..n {
        for j in (i + 1)..n {
            if rng.gen::<f64>() < p {
                b.add_edge(i as u32, j as u32);
            }
        }
    }
    b.build()
        .expect("low-to-high orientation cannot create cycles")
}

/// The paper's §5.3 sparse regime sets `p = p₀·ln(n)/(n−1)` for `p₀ > 6`.
/// Convenience helper computing that probability (natural log, as in the
/// reference \[18\] the paper builds on).
pub fn sparse_regime_p(n: usize, p0: f64) -> f64 {
    assert!(n >= 2);
    (p0 * (n as f64).ln() / (n as f64 - 1.0)).min(1.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_given_seed() {
        let g1 = erdos_renyi_dag(40, 0.2, 7);
        let g2 = erdos_renyi_dag(40, 0.2, 7);
        assert_eq!(g1.num_edges(), g2.num_edges());
        let e1: Vec<_> = g1.edges().collect();
        let e2: Vec<_> = g2.edges().collect();
        assert_eq!(e1, e2);
    }

    #[test]
    fn different_seeds_differ() {
        let g1 = erdos_renyi_dag(40, 0.3, 1);
        let g2 = erdos_renyi_dag(40, 0.3, 2);
        let e1: Vec<_> = g1.edges().collect();
        let e2: Vec<_> = g2.edges().collect();
        assert_ne!(e1, e2);
    }

    #[test]
    fn edge_count_concentrates_around_mean() {
        let n = 200;
        let p = 0.1;
        let g = erdos_renyi_dag(n, p, 42);
        let expected = p * (n * (n - 1) / 2) as f64;
        let got = g.num_edges() as f64;
        // 5-sigma band: sigma^2 = m p (1-p).
        let sigma = (expected * (1.0 - p)).sqrt();
        assert!(
            (got - expected).abs() < 5.0 * sigma,
            "edges {got} vs expected {expected}"
        );
    }

    #[test]
    fn extreme_probabilities() {
        let empty = erdos_renyi_dag(10, 0.0, 3);
        assert_eq!(empty.num_edges(), 0);
        let full = erdos_renyi_dag(10, 1.0, 3);
        assert_eq!(full.num_edges(), 45);
        // The complete DAG has max in-degree n-1.
        assert_eq!(full.max_in_degree(), 9);
    }

    #[test]
    fn edges_are_low_to_high() {
        let g = erdos_renyi_dag(30, 0.5, 9);
        for (u, v) in g.edges() {
            assert!(u < v);
        }
    }

    #[test]
    fn sparse_regime_probability_formula() {
        let p = sparse_regime_p(1000, 8.0);
        let expect = 8.0 * 1000f64.ln() / 999.0;
        assert!((p - expect).abs() < 1e-12);
        // Clamped to 1 for tiny n.
        assert_eq!(sparse_regime_p(2, 100.0), 1.0);
    }
}
