//! The unwrapped butterfly graph of a radix-2 FFT (paper §5.2, Figure 5).

use crate::dag::{CompGraph, GraphBuilder};
use crate::ops::OpKind;

/// Builds the computation graph of a `2^l`-point radix-2 FFT: the
/// unwrapped butterfly graph `B_l` with `(l+1)·2^l` vertices arranged in
/// `l+1` columns of `2^l` rows.
///
/// Vertex `(t, r)` (level `t ∈ 0..=l`, row `r ∈ 0..2^l`) has id
/// `t·2^l + r`. Level `t` feeds level `t+1` with edges
/// `(t,r) → (t+1,r)` and `(t,r) → (t+1, r xor 2^t)`, which realizes the
/// inductive definition of Appendix A: levels `0..l` form two disjoint
/// copies of `B_{l-1}` (rows split on bit `l-1`) joined by the final
/// column.
///
/// Every non-input vertex has in-degree 2; every non-output vertex has
/// out-degree 2 (the maximum out-degree the FFT bound divides by).
///
/// # Panics
/// Panics if `l >= 26` (the graph would not fit in memory anyway).
pub fn fft_butterfly(l: usize) -> CompGraph {
    assert!(l < 26, "fft_butterfly: l too large");
    let rows = 1usize << l;
    let n = (l + 1) * rows;
    let mut b = GraphBuilder::with_capacity(n, 2 * l * rows);
    for _ in 0..rows {
        b.add_vertex(OpKind::Input);
    }
    for _ in rows..n {
        b.add_vertex(OpKind::Butterfly);
    }
    let id = |t: usize, r: usize| (t * rows + r) as u32;
    for t in 0..l {
        let span = 1usize << t;
        for r in 0..rows {
            b.add_edge(id(t, r), id(t + 1, r));
            b.add_edge(id(t, r), id(t + 1, r ^ span));
        }
    }
    b.build()
        .expect("butterfly construction is acyclic by levels")
}

/// Vertex id of level `t`, row `r` in [`fft_butterfly`]`(l)`.
pub fn fft_vertex_id(l: usize, t: usize, r: usize) -> usize {
    t * (1usize << l) + r
}

/// Builds the *wrapped* butterfly digraph `WB_l`: `l` columns of `2^l`
/// rows with the final column feeding back into the first, the layout the
/// paper contrasts its unwrapped spectrum against (Comellas et al., whose
/// closed form covers only this wrapped variant).
///
/// The wrap-around makes the graph cyclic, so it is **not** a computation
/// DAG; it is returned as an undirected edge list (each butterfly link
/// once) for spectral experiments only.
///
/// Vertex `(t, r)` has id `t·2^l + r` for `t ∈ 0..l`; column `t` connects
/// to column `(t+1) mod l` with edges `(t,r)—(t+1,r)` and
/// `(t,r)—(t+1, r xor 2^t)`.
///
/// # Panics
/// Panics if `l < 2` (the wrap would create self-loops) or `l >= 26`.
pub fn wrapped_butterfly_edges(l: usize) -> (usize, Vec<(u32, u32)>) {
    assert!((2..26).contains(&l), "wrapped butterfly needs 2 <= l < 26");
    let rows = 1usize << l;
    let n = l * rows;
    let id = |t: usize, r: usize| (t * rows + r) as u32;
    let mut edges = Vec::with_capacity(2 * n);
    for t in 0..l {
        let next = (t + 1) % l;
        let span = 1usize << t;
        for r in 0..rows {
            edges.push((id(t, r), id(next, r)));
            edges.push((id(t, r), id(next, r ^ span)));
        }
    }
    (n, edges)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_match_paper_formulas() {
        for l in 0..8 {
            let g = fft_butterfly(l);
            assert_eq!(g.n(), (l + 1) << l, "n for l={l}");
            assert_eq!(g.num_edges(), (2 * l) << l, "edges for l={l}");
        }
    }

    #[test]
    fn degrees_are_two_except_boundaries() {
        let l = 4;
        let g = fft_butterfly(l);
        let rows = 1 << l;
        for v in 0..g.n() {
            let level = v / rows;
            if level == 0 {
                assert_eq!(g.in_degree(v), 0);
                assert_eq!(g.out_degree(v), 2);
            } else if level == l {
                assert_eq!(g.in_degree(v), 2);
                assert_eq!(g.out_degree(v), 0);
            } else {
                assert_eq!(g.in_degree(v), 2);
                assert_eq!(g.out_degree(v), 2);
            }
        }
        assert_eq!(g.max_in_degree(), 2);
        assert_eq!(g.max_out_degree(), 2);
    }

    #[test]
    fn figure5_four_point_fft() {
        // 2^2 = 4-point FFT: 12 vertices in 3 columns of 4.
        let g = fft_butterfly(2);
        assert_eq!(g.n(), 12);
        assert_eq!(g.sources().len(), 4);
        assert_eq!(g.sinks().len(), 4);
        // Level-1 vertex in row 0 has parents rows {0, 1} of level 0.
        let p = g.parents(fft_vertex_id(2, 1, 0));
        let mut p: Vec<u32> = p.to_vec();
        p.sort_unstable();
        assert_eq!(p, vec![0, 1]);
        // Level-2 vertex in row 0 has parents rows {0, 2} of level 1.
        let mut p: Vec<u32> = g.parents(fft_vertex_id(2, 2, 0)).to_vec();
        p.sort_unstable();
        assert_eq!(p, vec![4, 6]);
    }

    #[test]
    fn every_output_depends_on_every_input() {
        let l = 3;
        let g = fft_butterfly(l);
        let rows = 1 << l;
        for out_row in 0..rows {
            let anc = g.ancestors(fft_vertex_id(l, l, out_row));
            let inputs = anc.iter().filter(|&&v| v < rows).count();
            assert_eq!(inputs, rows, "output row {out_row}");
        }
    }

    #[test]
    fn wrapped_butterfly_is_4_regular() {
        for l in 2..6 {
            let (n, edges) = wrapped_butterfly_edges(l);
            assert_eq!(n, l << l);
            assert_eq!(edges.len(), 2 * n, "each vertex sends 2 links");
            let mut deg = vec![0usize; n];
            for &(u, v) in &edges {
                deg[u as usize] += 1;
                deg[v as usize] += 1;
            }
            assert!(deg.iter().all(|&d| d == 4), "l={l}: degrees {deg:?}");
        }
    }

    #[test]
    #[should_panic(expected = "wrapped butterfly needs")]
    fn wrapped_butterfly_rejects_degenerate_sizes() {
        wrapped_butterfly_edges(1);
    }

    #[test]
    fn recursive_structure_two_copies_joined() {
        // In B_l, levels 0..l restricted to rows with bit l-1 clear form
        // B_{l-1}: check no edge before the last level crosses the halves.
        let l = 4;
        let g = fft_butterfly(l);
        let rows = 1usize << l;
        let half = rows / 2;
        for (u, v) in g.edges() {
            let (tu, ru) = (u / rows, u % rows);
            let rv = v % rows;
            if tu < l - 1 {
                assert_eq!(ru >= half, rv >= half, "edge {u}->{v} crosses halves early");
            }
        }
    }
}
