//! Generators for the computation graphs evaluated in the paper.
//!
//! §6.2 evaluates four families — the FFT butterfly, naive and Strassen
//! matrix multiplication, and the Bellman–Held–Karp hypercube — and §5.3
//! analyzes Erdős–Rényi random graphs. [`misc`] adds the inner product of
//! Figure 1 and a few families that are standard in the I/O-complexity
//! literature (diamond/stencil DAGs, reduction trees, layered random DAGs)
//! used by examples and tests.

pub mod erdos_renyi;
pub mod fft;
pub mod hypercube;
pub mod matmul;
pub mod misc;
pub mod strassen;

pub use erdos_renyi::erdos_renyi_dag;
pub use fft::fft_butterfly;
pub use hypercube::bhk_hypercube;
pub use matmul::{naive_matmul, naive_matmul_binary_tree};
pub use misc::{binary_reduction_tree, diamond_dag, inner_product, layered_random_dag, path_dag};
pub use strassen::strassen_matmul;
