//! The immutable computation-graph data structure and its builder.

use crate::ops::OpKind;
use std::fmt;

/// Errors produced while constructing or deserializing a computation graph.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GraphError {
    /// An edge references a vertex id `>= n`.
    InvalidVertex {
        /// The offending vertex id.
        id: u32,
        /// Number of vertices in the graph.
        n: usize,
    },
    /// The edge set contains a directed cycle (computation graphs must be
    /// acyclic); `remaining` vertices could not be topologically ordered.
    Cycle {
        /// Number of vertices involved in or downstream of cycles.
        remaining: usize,
    },
    /// A self-loop `v → v` was added.
    SelfLoop {
        /// The vertex with the self-loop.
        id: u32,
    },
}

impl fmt::Display for GraphError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GraphError::InvalidVertex { id, n } => {
                write!(f, "edge references vertex {id} but graph has {n} vertices")
            }
            GraphError::Cycle { remaining } => {
                write!(
                    f,
                    "graph contains a cycle ({remaining} vertices unorderable)"
                )
            }
            GraphError::SelfLoop { id } => write!(f, "self-loop on vertex {id}"),
        }
    }
}

impl std::error::Error for GraphError {}

/// An immutable directed acyclic computation graph.
///
/// Stored as CSR in both directions so parents and children of any vertex,
/// and all four degree queries, are O(1)/O(deg). Vertex ids are dense
/// `0..n`. Parallel edges are allowed (e.g. `x * x` consumes the same
/// operand twice) and are preserved.
#[derive(Debug, Clone, PartialEq)]
pub struct CompGraph {
    ops: Vec<OpKind>,
    /// Children: `fwd_idx[fwd_ptr[v]..fwd_ptr[v+1]]`.
    fwd_ptr: Vec<usize>,
    fwd_idx: Vec<u32>,
    /// Parents: `rev_idx[rev_ptr[v]..rev_ptr[v+1]]`.
    rev_ptr: Vec<usize>,
    rev_idx: Vec<u32>,
}

impl CompGraph {
    /// Number of vertices (the paper's `n`).
    pub fn n(&self) -> usize {
        self.ops.len()
    }

    /// Number of directed edges.
    pub fn num_edges(&self) -> usize {
        self.fwd_idx.len()
    }

    /// Operation computed by vertex `v`.
    pub fn op(&self, v: usize) -> OpKind {
        self.ops[v]
    }

    /// All operations, indexed by vertex.
    pub fn ops(&self) -> &[OpKind] {
        &self.ops
    }

    /// Children of `v` (vertices consuming `v`'s value).
    pub fn children(&self, v: usize) -> &[u32] {
        &self.fwd_idx[self.fwd_ptr[v]..self.fwd_ptr[v + 1]]
    }

    /// Parents of `v` (operands of `v`).
    pub fn parents(&self, v: usize) -> &[u32] {
        &self.rev_idx[self.rev_ptr[v]..self.rev_ptr[v + 1]]
    }

    /// Out-degree `d_out(v)`.
    pub fn out_degree(&self, v: usize) -> usize {
        self.fwd_ptr[v + 1] - self.fwd_ptr[v]
    }

    /// In-degree `d_in(v)`.
    pub fn in_degree(&self, v: usize) -> usize {
        self.rev_ptr[v + 1] - self.rev_ptr[v]
    }

    /// Total (undirected) degree `d(v) = d_in(v) + d_out(v)`.
    pub fn degree(&self, v: usize) -> usize {
        self.in_degree(v) + self.out_degree(v)
    }

    /// Maximum out-degree over all vertices (0 for the empty graph).
    pub fn max_out_degree(&self) -> usize {
        (0..self.n()).map(|v| self.out_degree(v)).max().unwrap_or(0)
    }

    /// Maximum in-degree over all vertices (0 for the empty graph).
    pub fn max_in_degree(&self) -> usize {
        (0..self.n()).map(|v| self.in_degree(v)).max().unwrap_or(0)
    }

    /// Source vertices (in-degree 0) — the computation's inputs.
    pub fn sources(&self) -> Vec<usize> {
        (0..self.n()).filter(|&v| self.in_degree(v) == 0).collect()
    }

    /// Sink vertices (out-degree 0) — the computation's outputs.
    pub fn sinks(&self) -> Vec<usize> {
        (0..self.n()).filter(|&v| self.out_degree(v) == 0).collect()
    }

    /// Iterates over all directed edges `(u, v)`.
    pub fn edges(&self) -> impl Iterator<Item = (usize, usize)> + '_ {
        (0..self.n()).flat_map(move |u| self.children(u).iter().map(move |&v| (u, v as usize)))
    }

    /// Checks that `order` is a permutation of `0..n` evaluating every
    /// vertex after all of its parents.
    pub fn is_topological(&self, order: &[usize]) -> bool {
        if order.len() != self.n() {
            return false;
        }
        let mut position = vec![usize::MAX; self.n()];
        for (pos, &v) in order.iter().enumerate() {
            if v >= self.n() || position[v] != usize::MAX {
                return false;
            }
            position[v] = pos;
        }
        self.edges().all(|(u, v)| position[u] < position[v])
    }

    /// Vertices reachable from `v` by directed paths, **excluding** `v`.
    pub fn descendants(&self, v: usize) -> Vec<usize> {
        self.reach(v, false)
    }

    /// Vertices that reach `v` by directed paths, **excluding** `v`.
    pub fn ancestors(&self, v: usize) -> Vec<usize> {
        self.reach(v, true)
    }

    fn reach(&self, v: usize, backwards: bool) -> Vec<usize> {
        let mut seen = vec![false; self.n()];
        let mut stack = vec![v];
        seen[v] = true;
        let mut out = Vec::new();
        while let Some(u) = stack.pop() {
            let next = if backwards {
                self.parents(u)
            } else {
                self.children(u)
            };
            for &w in next {
                let w = w as usize;
                if !seen[w] {
                    seen[w] = true;
                    out.push(w);
                    stack.push(w);
                }
            }
        }
        out
    }

    /// Approximate heap footprint of this graph in bytes — both CSR
    /// directions plus the op table. Used by the service's session cache
    /// for byte-budget eviction; exact allocator overhead is ignored.
    pub fn approx_bytes(&self) -> usize {
        self.ops.len() * std::mem::size_of::<OpKind>()
            + (self.fwd_ptr.len() + self.rev_ptr.len()) * std::mem::size_of::<usize>()
            + (self.fwd_idx.len() + self.rev_idx.len()) * std::mem::size_of::<u32>()
    }

    /// Portable edge-list representation (see [`crate::json`] for the JSON
    /// form).
    pub fn to_edge_list(&self) -> EdgeListGraph {
        EdgeListGraph {
            ops: self.ops.clone(),
            edges: self.edges().map(|(u, v)| (u as u32, v as u32)).collect(),
        }
    }
}

/// A portable, serializable edge-list form of a [`CompGraph`].
#[derive(Debug, Clone, PartialEq)]
pub struct EdgeListGraph {
    /// Operation per vertex; the length defines the vertex count.
    pub ops: Vec<OpKind>,
    /// Directed edges `(from, to)`.
    pub edges: Vec<(u32, u32)>,
}

impl TryFrom<EdgeListGraph> for CompGraph {
    type Error = GraphError;

    fn try_from(el: EdgeListGraph) -> Result<CompGraph, GraphError> {
        let mut b = GraphBuilder::new();
        for op in el.ops {
            b.add_vertex(op);
        }
        for (u, v) in el.edges {
            b.add_edge_ids(u, v);
        }
        b.build()
    }
}

/// Incremental builder for [`CompGraph`], validating on [`GraphBuilder::build`].
#[derive(Debug, Default, Clone)]
pub struct GraphBuilder {
    ops: Vec<OpKind>,
    edges: Vec<(u32, u32)>,
}

impl GraphBuilder {
    /// New empty builder.
    pub fn new() -> Self {
        GraphBuilder::default()
    }

    /// Builder preallocating space for `vertices` / `edges`.
    pub fn with_capacity(vertices: usize, edges: usize) -> Self {
        GraphBuilder {
            ops: Vec::with_capacity(vertices),
            edges: Vec::with_capacity(edges),
        }
    }

    /// Adds a vertex computing `op` and returns its id.
    pub fn add_vertex(&mut self, op: OpKind) -> u32 {
        let id = self.ops.len() as u32;
        self.ops.push(op);
        id
    }

    /// Adds the directed edge `from → to` (operand relation).
    pub fn add_edge(&mut self, from: u32, to: u32) {
        self.edges.push((from, to));
    }

    /// Alias for [`GraphBuilder::add_edge`] (kept for readability at call
    /// sites that work with raw ids from deserialization).
    pub fn add_edge_ids(&mut self, from: u32, to: u32) {
        self.add_edge(from, to);
    }

    /// Number of vertices added so far.
    pub fn n(&self) -> usize {
        self.ops.len()
    }

    /// Validates (bounds, self-loops, acyclicity) and freezes the graph.
    ///
    /// # Errors
    /// [`GraphError::InvalidVertex`], [`GraphError::SelfLoop`] or
    /// [`GraphError::Cycle`].
    pub fn build(self) -> Result<CompGraph, GraphError> {
        let n = self.ops.len();
        for &(u, v) in &self.edges {
            if u as usize >= n {
                return Err(GraphError::InvalidVertex { id: u, n });
            }
            if v as usize >= n {
                return Err(GraphError::InvalidVertex { id: v, n });
            }
            if u == v {
                return Err(GraphError::SelfLoop { id: u });
            }
        }
        // CSR in both directions via counting sort.
        let mut fwd_ptr = vec![0usize; n + 1];
        let mut rev_ptr = vec![0usize; n + 1];
        for &(u, v) in &self.edges {
            fwd_ptr[u as usize + 1] += 1;
            rev_ptr[v as usize + 1] += 1;
        }
        for i in 0..n {
            fwd_ptr[i + 1] += fwd_ptr[i];
            rev_ptr[i + 1] += rev_ptr[i];
        }
        let m = self.edges.len();
        let mut fwd_idx = vec![0u32; m];
        let mut rev_idx = vec![0u32; m];
        let mut fcur = fwd_ptr.clone();
        let mut rcur = rev_ptr.clone();
        for &(u, v) in &self.edges {
            fwd_idx[fcur[u as usize]] = v;
            fcur[u as usize] += 1;
            rev_idx[rcur[v as usize]] = u;
            rcur[v as usize] += 1;
        }
        let g = CompGraph {
            ops: self.ops,
            fwd_ptr,
            fwd_idx,
            rev_ptr,
            rev_idx,
        };
        // Kahn's algorithm to certify acyclicity.
        let mut indeg: Vec<usize> = (0..n).map(|v| g.in_degree(v)).collect();
        let mut queue: Vec<usize> = (0..n).filter(|&v| indeg[v] == 0).collect();
        let mut visited = 0usize;
        while let Some(v) = queue.pop() {
            visited += 1;
            for &c in g.children(v) {
                indeg[c as usize] -= 1;
                if indeg[c as usize] == 0 {
                    queue.push(c as usize);
                }
            }
        }
        if visited != n {
            return Err(GraphError::Cycle {
                remaining: n - visited,
            });
        }
        Ok(g)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The paper's Figure 1: inner product of two 2-vectors.
    fn inner_product_graph() -> CompGraph {
        let mut b = GraphBuilder::new();
        let v: Vec<u32> = (0..4).map(|_| b.add_vertex(OpKind::Input)).collect();
        let m1 = b.add_vertex(OpKind::Mul);
        let m2 = b.add_vertex(OpKind::Mul);
        let s = b.add_vertex(OpKind::Add);
        b.add_edge(v[0], m1);
        b.add_edge(v[1], m1);
        b.add_edge(v[2], m2);
        b.add_edge(v[3], m2);
        b.add_edge(m1, s);
        b.add_edge(m2, s);
        b.build().unwrap()
    }

    #[test]
    fn figure1_inner_product_shape() {
        let g = inner_product_graph();
        assert_eq!(g.n(), 7);
        assert_eq!(g.num_edges(), 6);
        assert_eq!(g.sources(), vec![0, 1, 2, 3]);
        assert_eq!(g.sinks(), vec![6]);
        assert_eq!(g.in_degree(6), 2);
        assert_eq!(g.out_degree(0), 1);
        assert_eq!(g.max_in_degree(), 2);
        assert_eq!(g.max_out_degree(), 1);
        assert_eq!(g.parents(4), &[0, 1]);
        assert_eq!(g.children(4), &[6]);
    }

    #[test]
    fn cycle_is_rejected() {
        let mut b = GraphBuilder::new();
        let a = b.add_vertex(OpKind::Add);
        let c = b.add_vertex(OpKind::Add);
        b.add_edge(a, c);
        b.add_edge(c, a);
        assert_eq!(b.build().unwrap_err(), GraphError::Cycle { remaining: 2 });
    }

    #[test]
    fn self_loop_is_rejected() {
        let mut b = GraphBuilder::new();
        let a = b.add_vertex(OpKind::Add);
        b.add_edge(a, a);
        assert_eq!(b.build().unwrap_err(), GraphError::SelfLoop { id: 0 });
    }

    #[test]
    fn out_of_range_edge_is_rejected() {
        let mut b = GraphBuilder::new();
        b.add_vertex(OpKind::Add);
        b.add_edge(0, 5);
        assert_eq!(
            b.build().unwrap_err(),
            GraphError::InvalidVertex { id: 5, n: 1 }
        );
    }

    #[test]
    fn parallel_edges_are_preserved() {
        // x * x: the square consumes the same operand twice.
        let mut b = GraphBuilder::new();
        let x = b.add_vertex(OpKind::Input);
        let sq = b.add_vertex(OpKind::Mul);
        b.add_edge(x, sq);
        b.add_edge(x, sq);
        let g = b.build().unwrap();
        assert_eq!(g.num_edges(), 2);
        assert_eq!(g.in_degree(1), 2);
        assert_eq!(g.out_degree(0), 2);
        assert_eq!(g.parents(1), &[0, 0]);
    }

    #[test]
    fn is_topological_accepts_and_rejects() {
        let g = inner_product_graph();
        assert!(g.is_topological(&[0, 1, 2, 3, 4, 5, 6]));
        assert!(g.is_topological(&[3, 2, 5, 0, 1, 4, 6]));
        // Sum before its operand.
        assert!(!g.is_topological(&[0, 1, 2, 3, 6, 4, 5]));
        // Not a permutation.
        assert!(!g.is_topological(&[0, 0, 2, 3, 4, 5, 6]));
        // Wrong length.
        assert!(!g.is_topological(&[0, 1, 2]));
    }

    #[test]
    fn ancestors_and_descendants() {
        let g = inner_product_graph();
        let mut anc = g.ancestors(6);
        anc.sort_unstable();
        assert_eq!(anc, vec![0, 1, 2, 3, 4, 5]);
        let mut desc = g.descendants(0);
        desc.sort_unstable();
        assert_eq!(desc, vec![4, 6]);
        assert!(g.descendants(6).is_empty());
        assert!(g.ancestors(0).is_empty());
    }

    #[test]
    fn edge_list_roundtrip() {
        let g = inner_product_graph();
        let el = g.to_edge_list();
        let back = CompGraph::try_from(el.clone()).unwrap();
        assert_eq!(g.n(), back.n());
        assert_eq!(g.num_edges(), back.num_edges());
        for v in 0..g.n() {
            assert_eq!(g.parents(v), back.parents(v));
            assert_eq!(g.op(v), back.op(v));
        }
        // And through the JSON interchange form.
        let json = el.to_json();
        let el2 = EdgeListGraph::from_json(&json).unwrap();
        assert_eq!(el, el2);
    }

    #[test]
    fn empty_graph() {
        let g = GraphBuilder::new().build().unwrap();
        assert_eq!(g.n(), 0);
        assert_eq!(g.num_edges(), 0);
        assert_eq!(g.max_in_degree(), 0);
        assert!(g.sources().is_empty());
        assert!(g.is_topological(&[]));
    }
}
