//! Computation graphs (CDAGs) for I/O-complexity analysis.
//!
//! A computation is modelled as a directed acyclic graph in which every
//! vertex is a single operation (inputs included) and an edge `u → v` means
//! `v` consumes the value produced by `u` (paper §3). This crate provides:
//!
//! * [`CompGraph`] — an immutable CSR (both directions) DAG with O(1) degree
//!   and adjacency queries, plus [`GraphBuilder`] with full validation.
//! * [`generators`] — the computation graphs evaluated in the paper's §6
//!   (FFT butterfly, naive and Strassen matrix multiplication,
//!   Bellman–Held–Karp hypercube, Erdős–Rényi) and supporting families
//!   (inner product, diamond/stencil DAGs, trees, layered random DAGs).
//! * [`trace`] — the §6.1 "solver" frontend: operator-overloaded values
//!   that record an ordinary Rust computation into a `CompGraph`.
//! * [`topo`] — topological evaluation orders (deterministic and random).
//! * [`decompose`] — balanced recursive bisection into convex components,
//!   the partition driver of the compose analysis mode.
//! * [`dot`] — Graphviz export.
//! * [`json`] — the JSON edge-list interchange format used by the CLI.
//! * [`fingerprint`] — relabeling-invariant structural hashes, the cache
//!   key of the analysis service.

pub mod dag;
pub mod decompose;
pub mod dot;
pub mod fingerprint;
pub mod generators;
pub mod json;
pub mod ops;
pub mod topo;
pub mod trace;

pub use dag::{CompGraph, EdgeListGraph, GraphBuilder, GraphError};
pub use decompose::{decompose, induced_subgraph, DecomposeOptions, Decomposition};
pub use fingerprint::{fingerprint, Fingerprint};
pub use ops::OpKind;
pub use trace::{Tracer, Tv};
