//! Canonical structural fingerprints of computation graphs.
//!
//! The analysis service caches one expensive spectral session per graph, so
//! it needs a cache key that (a) is identical for structurally identical
//! graphs regardless of how their vertices happen to be numbered, and
//! (b) collides between *different* graphs only with hash-negligible
//! probability. [`fingerprint`] delivers both with Weisfeiler–Leman color
//! refinement over the CSR adjacency:
//!
//! 1. every vertex starts with a color derived from its operation, its
//!    in/out degree, and its exact longest-path depth from the sources
//!    and height to the sinks (global attributes that catch long-range
//!    differences the bounded refinement below cannot reach),
//! 2. each round re-colors every vertex from its own color plus the
//!    *sorted multisets* of its parents' and children's colors (sorting
//!    makes the round independent of edge order; multisets preserve
//!    parallel edges),
//! 3. after `O(log n)` rounds the fingerprint is a hash of the sorted
//!    final color multiset together with the vertex and edge counts.
//!
//! Every ingredient is a set or sorted multiset, so any relabeling
//! `π: V → V` maps each vertex to the same color sequence and the whole
//! graph to the same [`Fingerprint`]. The converse (fingerprint-equal ⇒
//! structurally equal) holds up to 128-bit hash collisions and the usual
//! WL limits; for the op-labeled, degree-diverse DAGs this workspace
//! analyzes, refinement separates non-isomorphic graphs in practice (this
//! is property-tested against the spectral bounds in `tests/fingerprint.rs`
//! at the workspace root).

use crate::dag::CompGraph;
use crate::ops::OpKind;
use std::fmt;

/// A 128-bit order-independent structural hash of a [`CompGraph`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Fingerprint(pub u128);

impl Fingerprint {
    /// Lowercase fixed-width hex form (32 digits), the service's wire
    /// format.
    pub fn to_hex(self) -> String {
        format!("{:032x}", self.0)
    }

    /// Parses the form produced by [`Fingerprint::to_hex`] — exactly 32
    /// lowercase hex digits; non-canonical spellings (uppercase, signs)
    /// are rejected so each fingerprint has one wire form.
    pub fn from_hex(s: &str) -> Option<Fingerprint> {
        (s.len() == 32 && s.bytes().all(|b| matches!(b, b'0'..=b'9' | b'a'..=b'f')))
            .then(|| u128::from_str_radix(s, 16).ok())
            .flatten()
            .map(Fingerprint)
    }
}

impl fmt::Display for Fingerprint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.to_hex())
    }
}

/// SplitMix64 finalizer — the mixing primitive for one 64-bit lane.
fn mix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A vertex color: two independently seeded 64-bit lanes, so the combined
/// fingerprint behaves like a 128-bit hash rather than a 64-bit one.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
struct Color(u64, u64);

const LANE0: u64 = 0x8C3F_27A1_5E94_D6B7;
const LANE1: u64 = 0x243F_6A88_85A3_08D3;

impl Color {
    fn seed(tag: u64) -> Color {
        Color(mix(tag ^ LANE0), mix(tag ^ LANE1))
    }

    fn absorb(&mut self, other: Color) {
        self.0 = mix(self.0 ^ other.0.rotate_left(17));
        self.1 = mix(self.1 ^ other.1.rotate_left(29));
    }

    fn absorb_u64(&mut self, v: u64) {
        self.absorb(Color(mix(v ^ LANE0), mix(v ^ LANE1)));
    }
}

/// Stable numeric tag for an operation (relabeling-independent by
/// construction: it depends only on the op itself).
fn op_tag(op: OpKind) -> u64 {
    match op {
        OpKind::Input => 1,
        OpKind::Add => 2,
        OpKind::Sub => 3,
        OpKind::Mul => 4,
        OpKind::Div => 5,
        OpKind::Sum => 6,
        OpKind::Butterfly => 7,
        OpKind::BhkUpdate => 8,
        OpKind::Custom(tag) => 0x100 + tag as u64,
    }
}

/// Longest-path distance of every vertex from the sources (`forward`) or
/// to the sinks (`!forward`), in O(n + m) over a topological sweep. A
/// relabeling-invariant *global* vertex attribute: WL refinement below
/// only propagates information `rounds` hops, so without it two graphs
/// differing only in how long-range path structure is distributed (e.g.
/// chain components of lengths 100+900 vs 500+500) could collide.
fn longest_path_depths(g: &CompGraph, forward: bool) -> Vec<u64> {
    let n = g.n();
    let mut depth = vec![0u64; n];
    let mut indeg: Vec<usize> = (0..n)
        .map(|v| {
            if forward {
                g.in_degree(v)
            } else {
                g.out_degree(v)
            }
        })
        .collect();
    let mut queue: Vec<usize> = (0..n).filter(|&v| indeg[v] == 0).collect();
    while let Some(v) = queue.pop() {
        let next = if forward { g.children(v) } else { g.parents(v) };
        for &w in next {
            let w = w as usize;
            depth[w] = depth[w].max(depth[v] + 1);
            indeg[w] -= 1;
            if indeg[w] == 0 {
                queue.push(w);
            }
        }
    }
    depth
}

/// Computes the canonical structural fingerprint of `g` (see module docs).
pub fn fingerprint(g: &CompGraph) -> Fingerprint {
    let n = g.n();
    // Round 0: op + degrees + exact longest-path depth/height.
    let depths = longest_path_depths(g, true);
    let heights = longest_path_depths(g, false);
    let mut colors: Vec<Color> = (0..n)
        .map(|v| {
            let mut c = Color::seed(op_tag(g.op(v)));
            c.absorb_u64(g.in_degree(v) as u64);
            c.absorb_u64(g.out_degree(v) as u64);
            c.absorb_u64(depths[v]);
            c.absorb_u64(heights[v]);
            c
        })
        .collect();

    // O(log n) refinement rounds: enough for the neighborhood signature of
    // every vertex to reach across the graphs' typical diameters while
    // keeping fingerprinting O((n + m) log n).
    let rounds = usize::BITS as usize - n.leading_zeros() as usize + 2;
    let mut next = colors.clone();
    let mut scratch: Vec<Color> = Vec::new();
    for _ in 0..rounds {
        for v in 0..n {
            let mut c = colors[v];
            c.absorb_u64(0x5ca1ab1e); // domain-separate self from neighbors
            for (side, nbrs) in [(0x0au64, g.parents(v)), (0x0bu64, g.children(v))] {
                scratch.clear();
                scratch.extend(nbrs.iter().map(|&u| colors[u as usize]));
                scratch.sort_unstable();
                c.absorb_u64(side);
                for &nc in &scratch {
                    c.absorb(nc);
                }
            }
            next[v] = c;
        }
        std::mem::swap(&mut colors, &mut next);
    }

    // The fingerprint is the hash of the sorted color multiset plus the
    // global counts, so vertex order never matters.
    colors.sort_unstable();
    let mut acc = Color::seed(0x6f70_5f67_7261_7068); // "op_graph"
    acc.absorb_u64(n as u64);
    acc.absorb_u64(g.num_edges() as u64);
    for &c in &colors {
        acc.absorb(c);
    }
    Fingerprint(((acc.0 as u128) << 64) | acc.1 as u128)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dag::{EdgeListGraph, GraphBuilder};
    use crate::generators::{diamond_dag, fft_butterfly, naive_matmul};

    /// Rebuilds `g` with vertices renamed by `perm[v]`.
    fn relabel(g: &CompGraph, perm: &[u32]) -> CompGraph {
        let mut ops = vec![OpKind::Input; g.n()];
        for v in 0..g.n() {
            ops[perm[v] as usize] = g.op(v);
        }
        let edges = g
            .edges()
            .map(|(u, v)| (perm[u], perm[v]))
            .collect::<Vec<_>>();
        CompGraph::try_from(EdgeListGraph { ops, edges }).unwrap()
    }

    #[test]
    fn hex_roundtrips() {
        let fp = Fingerprint(0x0123_4567_89ab_cdef_fedc_ba98_7654_3210);
        assert_eq!(Fingerprint::from_hex(&fp.to_hex()), Some(fp));
        assert_eq!(fp.to_hex().len(), 32);
        assert!(Fingerprint::from_hex("xyz").is_none());
        assert!(Fingerprint::from_hex("00").is_none());
        // Only the canonical spelling is accepted.
        assert!(Fingerprint::from_hex("+00000000000000000000000000000ff").is_none());
        assert!(Fingerprint::from_hex("000000000000000000000000000000FF").is_none());
    }

    #[test]
    fn identical_graphs_agree_and_families_differ() {
        let a = fft_butterfly(4);
        let b = fft_butterfly(4);
        assert_eq!(fingerprint(&a), fingerprint(&b));
        assert_ne!(fingerprint(&a), fingerprint(&fft_butterfly(5)));
        assert_ne!(fingerprint(&a), fingerprint(&naive_matmul(3)));
        assert_ne!(fingerprint(&a), fingerprint(&diamond_dag(4, 4)));
    }

    #[test]
    fn relabeling_preserves_the_fingerprint() {
        let g = naive_matmul(3);
        let n = g.n() as u32;
        // A fixed but thorough permutation: reversal plus a coprime stride.
        let perm: Vec<u32> = (0..n).map(|v| (v.wrapping_mul(31) + 7) % n).collect();
        let mut seen = vec![false; n as usize];
        for &p in &perm {
            assert!(!std::mem::replace(&mut seen[p as usize], true));
        }
        let h = relabel(&g, &perm);
        assert_eq!(fingerprint(&g), fingerprint(&h));
        let rev: Vec<u32> = (0..n).rev().collect();
        assert_eq!(fingerprint(&g), fingerprint(&relabel(&g, &rev)));
    }

    #[test]
    fn edge_direction_and_ops_matter() {
        let mut b = GraphBuilder::new();
        let x = b.add_vertex(OpKind::Input);
        let y = b.add_vertex(OpKind::Add);
        b.add_edge(x, y);
        let g1 = b.build().unwrap();

        let mut b = GraphBuilder::new();
        let x = b.add_vertex(OpKind::Add);
        let y = b.add_vertex(OpKind::Input);
        b.add_edge(x, y);
        let g2 = b.build().unwrap();
        // Same shape, ops swapped across the edge.
        assert_ne!(fingerprint(&g1), fingerprint(&g2));

        let mut b = GraphBuilder::new();
        let x = b.add_vertex(OpKind::Input);
        let y = b.add_vertex(OpKind::Add);
        b.add_edge(x, y);
        b.add_edge(x, y);
        let g3 = b.build().unwrap();
        // Parallel edges are part of the structure.
        assert_ne!(fingerprint(&g1), fingerprint(&g3));
    }

    /// A directed chain of `Add` vertices with an `Input` head.
    fn chain(b: &mut GraphBuilder, len: usize) {
        let mut prev = b.add_vertex(OpKind::Input);
        for _ in 1..len {
            let next = b.add_vertex(OpKind::Add);
            b.add_edge(prev, next);
            prev = next;
        }
    }

    #[test]
    fn long_range_component_structure_is_distinguished() {
        // Same n, m, ops and degree multisets; the difference (how total
        // path length splits across components) sits hundreds of hops
        // from every chain end — beyond any bounded WL radius. The
        // longest-path seeding must separate them.
        let mut b = GraphBuilder::new();
        chain(&mut b, 100);
        chain(&mut b, 900);
        let uneven = b.build().unwrap();
        let mut b = GraphBuilder::new();
        chain(&mut b, 500);
        chain(&mut b, 500);
        let even = b.build().unwrap();
        assert_eq!(uneven.n(), even.n());
        assert_eq!(uneven.num_edges(), even.num_edges());
        assert_ne!(fingerprint(&uneven), fingerprint(&even));
    }

    #[test]
    fn empty_graph_is_fingerprintable() {
        let g = GraphBuilder::new().build().unwrap();
        assert_eq!(
            fingerprint(&g),
            fingerprint(&GraphBuilder::new().build().unwrap())
        );
    }
}
