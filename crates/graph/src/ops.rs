//! Operation kinds attached to computation-graph vertices.
//!
//! The spectral bound itself is structure-only — it never inspects the
//! operation — but generators, the tracing frontend, DOT export and the
//! examples all benefit from knowing what each vertex computes.

use std::fmt;

/// What a computation-graph vertex computes.
///
/// JSON interchange lives in [`crate::json`] (`OpKind::to_json` /
/// `OpKind::from_json`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum OpKind {
    /// A program input (always a source vertex).
    Input,
    /// Binary addition.
    Add,
    /// Binary subtraction.
    Sub,
    /// Binary multiplication.
    Mul,
    /// Binary division.
    Div,
    /// n-ary summation (one vertex accumulating all of its parents).
    Sum,
    /// One output of a radix-2 FFT butterfly stage (two operands).
    Butterfly,
    /// A Bellman–Held–Karp dynamic-programming table update.
    BhkUpdate,
    /// Anything else; the payload is an application-defined tag.
    Custom(u32),
}

impl OpKind {
    /// Short mnemonic used by DOT export and debug output.
    pub fn mnemonic(&self) -> String {
        match self {
            OpKind::Input => "in".to_string(),
            OpKind::Add => "+".to_string(),
            OpKind::Sub => "-".to_string(),
            OpKind::Mul => "*".to_string(),
            OpKind::Div => "/".to_string(),
            OpKind::Sum => "Σ".to_string(),
            OpKind::Butterfly => "bfly".to_string(),
            OpKind::BhkUpdate => "bhk".to_string(),
            OpKind::Custom(tag) => format!("op{tag}"),
        }
    }

    /// True for vertices that represent program inputs.
    pub fn is_input(&self) -> bool {
        matches!(self, OpKind::Input)
    }
}

impl fmt::Display for OpKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.mnemonic())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mnemonics_are_distinct_for_basic_ops() {
        let ops = [
            OpKind::Input,
            OpKind::Add,
            OpKind::Sub,
            OpKind::Mul,
            OpKind::Div,
            OpKind::Sum,
            OpKind::Butterfly,
            OpKind::BhkUpdate,
            OpKind::Custom(7),
        ];
        let mut seen = std::collections::HashSet::new();
        for op in ops {
            assert!(seen.insert(op.mnemonic()), "duplicate mnemonic for {op:?}");
        }
    }

    #[test]
    fn only_input_is_input() {
        assert!(OpKind::Input.is_input());
        assert!(!OpKind::Add.is_input());
        assert!(!OpKind::Custom(0).is_input());
    }

    #[test]
    fn json_roundtrip() {
        let op = OpKind::Custom(42);
        let back = OpKind::from_json(&op.to_json()).unwrap();
        assert_eq!(op, back);
    }
}
