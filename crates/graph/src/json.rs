//! Minimal JSON support for the edge-list interchange format.
//!
//! The CLI pipes graphs between processes as JSON. With the workspace
//! building fully offline (no serde), this module provides the two things
//! actually needed: a small recursive-descent parser into [`JsonValue`],
//! and emit/parse for [`EdgeListGraph`] in the exact format the previous
//! serde derive produced:
//!
//! ```json
//! {"ops":["Input","Add",{"Custom":42}],"edges":[[0,2],[1,2]]}
//! ```

use crate::dag::EdgeListGraph;
use crate::ops::OpKind;
use std::fmt;

/// A parsed JSON document.
#[derive(Debug, Clone, PartialEq)]
pub enum JsonValue {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any JSON number (stored as `f64`).
    Number(f64),
    /// A string (escapes resolved).
    String(String),
    /// An array.
    Array(Vec<JsonValue>),
    /// An object, in source order.
    Object(Vec<(String, JsonValue)>),
}

impl JsonValue {
    /// Looks up a key in an object.
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        match self {
            JsonValue::Object(entries) => entries.iter().find_map(|(k, v)| (k == key).then_some(v)),
            _ => None,
        }
    }

    /// The elements if this is an array.
    pub fn as_array(&self) -> Option<&[JsonValue]> {
        match self {
            JsonValue::Array(v) => Some(v),
            _ => None,
        }
    }

    /// The value if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            JsonValue::Number(x) => Some(*x),
            _ => None,
        }
    }

    /// The value if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::String(s) => Some(s),
            _ => None,
        }
    }

    /// This number as a `u32`, if it is one exactly.
    pub fn as_u32(&self) -> Option<u32> {
        let x = self.as_f64()?;
        (x >= 0.0 && x <= u32::MAX as f64 && x.fract() == 0.0).then_some(x as u32)
    }

    /// This number as a `u64`, if it is a non-negative integer exactly
    /// representable in an `f64` (≤ 2⁵³ — the largest integers JSON can
    /// carry without loss).
    pub fn as_u64(&self) -> Option<u64> {
        let x = self.as_f64()?;
        (x >= 0.0 && x <= (1u64 << 53) as f64 && x.fract() == 0.0).then_some(x as u64)
    }
}

impl fmt::Display for JsonValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            JsonValue::Null => f.write_str("null"),
            JsonValue::Bool(b) => write!(f, "{b}"),
            JsonValue::Number(x) => {
                if x.fract() == 0.0 && x.abs() < 1e15 {
                    write!(f, "{}", *x as i64)
                } else {
                    write!(f, "{x}")
                }
            }
            JsonValue::String(s) => write_escaped(f, s),
            JsonValue::Array(items) => {
                f.write_str("[")?;
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write!(f, "{item}")?;
                }
                f.write_str("]")
            }
            JsonValue::Object(entries) => {
                f.write_str("{")?;
                for (i, (k, v)) in entries.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write_escaped(f, k)?;
                    write!(f, ":{v}")?;
                }
                f.write_str("}")
            }
        }
    }
}

fn write_escaped(f: &mut fmt::Formatter<'_>, s: &str) -> fmt::Result {
    f.write_str("\"")?;
    for c in s.chars() {
        match c {
            '"' => f.write_str("\\\"")?,
            '\\' => f.write_str("\\\\")?,
            '\n' => f.write_str("\\n")?,
            '\r' => f.write_str("\\r")?,
            '\t' => f.write_str("\\t")?,
            c if (c as u32) < 0x20 => write!(f, "\\u{:04x}", c as u32)?,
            c => write!(f, "{c}")?,
        }
    }
    f.write_str("\"")
}

/// A parse or schema error, with a byte offset for parse errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// Human-readable description.
    pub message: String,
    /// Byte offset in the input where parsing failed (0 for schema errors).
    pub offset: usize,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} (at byte {})", self.message, self.offset)
    }
}

impl std::error::Error for JsonError {}

/// Parses a complete JSON document (trailing whitespace allowed).
///
/// # Errors
/// Returns [`JsonError`] on malformed input or trailing garbage.
pub fn parse(input: &str) -> Result<JsonValue, JsonError> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let value = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters after JSON value"));
    }
    Ok(value)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, message: &str) -> JsonError {
        JsonError {
            message: message.to_string(),
            offset: self.pos,
        }
    }

    fn skip_ws(&mut self) {
        while matches!(self.bytes.get(self.pos), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", b as char)))
        }
    }

    fn literal(&mut self, word: &str, value: JsonValue) -> Result<JsonValue, JsonError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.err(&format!("invalid literal (expected '{word}')")))
        }
    }

    fn value(&mut self) -> Result<JsonValue, JsonError> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(JsonValue::String(self.string()?)),
            Some(b't') => self.literal("true", JsonValue::Bool(true)),
            Some(b'f') => self.literal("false", JsonValue::Bool(false)),
            Some(b'n') => self.literal("null", JsonValue::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn object(&mut self) -> Result<JsonValue, JsonError> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(JsonValue::Object(entries));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            entries.push((key, self.value()?));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(JsonValue::Object(entries));
                }
                _ => return Err(self.err("expected ',' or '}' in object")),
            }
        }
    }

    fn array(&mut self) -> Result<JsonValue, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(JsonValue::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(JsonValue::Array(items));
                }
                _ => return Err(self.err("expected ',' or ']' in array")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .and_then(|h| u32::from_str_radix(h, 16).ok())
                                .ok_or_else(|| self.err("invalid \\u escape"))?;
                            // Surrogate pairs are not needed for this format.
                            out.push(
                                char::from_u32(hex)
                                    .ok_or_else(|| self.err("invalid \\u code point"))?,
                            );
                            self.pos += 4;
                        }
                        _ => return Err(self.err("invalid escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 character (input is a valid &str).
                    let rest = &self.bytes[self.pos..];
                    let len = match rest[0] {
                        b if b < 0x80 => 1,
                        b if b >= 0xF0 => 4,
                        b if b >= 0xE0 => 3,
                        _ => 2,
                    };
                    out.push_str(
                        std::str::from_utf8(&rest[..len])
                            .map_err(|_| self.err("invalid UTF-8 in string"))?,
                    );
                    self.pos += len;
                }
            }
        }
    }

    fn number(&mut self) -> Result<JsonValue, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(
            self.peek(),
            Some(b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
        ) {
            self.pos += 1;
        }
        std::str::from_utf8(&self.bytes[start..self.pos])
            .ok()
            .and_then(|s| s.parse::<f64>().ok())
            .map(JsonValue::Number)
            .ok_or_else(|| self.err("invalid number"))
    }
}

fn schema_err(message: impl Into<String>) -> JsonError {
    JsonError {
        message: message.into(),
        offset: 0,
    }
}

impl OpKind {
    /// This operation as a [`JsonValue`] (unit variants as strings,
    /// `Custom(tag)` as `{"Custom":tag}`).
    pub fn to_json(&self) -> JsonValue {
        match self {
            OpKind::Custom(tag) => {
                JsonValue::Object(vec![("Custom".to_string(), JsonValue::Number(*tag as f64))])
            }
            other => JsonValue::String(format!("{other:?}")),
        }
    }

    /// Parses the representation produced by [`OpKind::to_json`].
    ///
    /// # Errors
    /// Returns [`JsonError`] on an unknown variant or malformed payload.
    pub fn from_json(value: &JsonValue) -> Result<OpKind, JsonError> {
        if let Some(name) = value.as_str() {
            return match name {
                "Input" => Ok(OpKind::Input),
                "Add" => Ok(OpKind::Add),
                "Sub" => Ok(OpKind::Sub),
                "Mul" => Ok(OpKind::Mul),
                "Div" => Ok(OpKind::Div),
                "Sum" => Ok(OpKind::Sum),
                "Butterfly" => Ok(OpKind::Butterfly),
                "BhkUpdate" => Ok(OpKind::BhkUpdate),
                other => Err(schema_err(format!("unknown op kind: {other}"))),
            };
        }
        value
            .get("Custom")
            .and_then(JsonValue::as_u32)
            .map(OpKind::Custom)
            .ok_or_else(|| schema_err("op must be a variant name or {\"Custom\":tag}"))
    }
}

impl EdgeListGraph {
    /// Serializes to the canonical one-line JSON interchange form.
    pub fn to_json(&self) -> String {
        JsonValue::Object(vec![
            (
                "ops".to_string(),
                JsonValue::Array(self.ops.iter().map(|op| op.to_json()).collect()),
            ),
            (
                "edges".to_string(),
                JsonValue::Array(
                    self.edges
                        .iter()
                        .map(|&(u, v)| {
                            JsonValue::Array(vec![
                                JsonValue::Number(u as f64),
                                JsonValue::Number(v as f64),
                            ])
                        })
                        .collect(),
                ),
            ),
        ])
        .to_string()
    }

    /// Parses the form produced by [`EdgeListGraph::to_json`].
    ///
    /// # Errors
    /// Returns [`JsonError`] on malformed JSON or a schema mismatch.
    pub fn from_json(input: &str) -> Result<EdgeListGraph, JsonError> {
        let doc = parse(input)?;
        EdgeListGraph::from_json_value(&doc)
    }

    /// Parses an already-parsed [`JsonValue`] in the same schema — used by
    /// the analysis service, whose request bodies embed graphs as
    /// sub-documents.
    ///
    /// # Errors
    /// Returns [`JsonError`] on a schema mismatch.
    pub fn from_json_value(doc: &JsonValue) -> Result<EdgeListGraph, JsonError> {
        let ops = doc
            .get("ops")
            .and_then(JsonValue::as_array)
            .ok_or_else(|| schema_err("missing \"ops\" array"))?
            .iter()
            .map(OpKind::from_json)
            .collect::<Result<Vec<_>, _>>()?;
        let edges = doc
            .get("edges")
            .and_then(JsonValue::as_array)
            .ok_or_else(|| schema_err("missing \"edges\" array"))?
            .iter()
            .map(|pair| {
                let pair = pair
                    .as_array()
                    .filter(|p| p.len() == 2)
                    .ok_or_else(|| schema_err("edge must be a [from, to] pair"))?;
                let u = pair[0]
                    .as_u32()
                    .ok_or_else(|| schema_err("edge endpoint must be a u32"))?;
                let v = pair[1]
                    .as_u32()
                    .ok_or_else(|| schema_err("edge endpoint must be a u32"))?;
                Ok((u, v))
            })
            .collect::<Result<Vec<_>, JsonError>>()?;
        Ok(EdgeListGraph { ops, edges })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars_and_nesting() {
        assert_eq!(parse("null").unwrap(), JsonValue::Null);
        assert_eq!(parse(" true ").unwrap(), JsonValue::Bool(true));
        assert_eq!(parse("-2.5e2").unwrap(), JsonValue::Number(-250.0));
        assert_eq!(
            parse(r#""a\nbA""#).unwrap(),
            JsonValue::String("a\nbA".to_string())
        );
        let doc = parse(r#"{"a":[1,2,{"b":[]}],"c":{}}"#).unwrap();
        assert_eq!(doc.get("a").unwrap().as_array().unwrap().len(), 3);
        assert_eq!(doc.get("c").unwrap(), &JsonValue::Object(vec![]));
    }

    #[test]
    fn rejects_malformed_input() {
        for bad in [
            "{not json",
            "[1,2",
            "{\"a\":}",
            "12 34",
            "",
            "\"unterminated",
        ] {
            assert!(parse(bad).is_err(), "{bad:?} should fail");
        }
    }

    #[test]
    fn display_roundtrips_through_parse() {
        let doc = parse(r#"{"ops":["Input",{"Custom":7}],"edges":[[0,1]],"x":"q\"uote"}"#).unwrap();
        let reparsed = parse(&doc.to_string()).unwrap();
        assert_eq!(doc, reparsed);
    }

    #[test]
    fn op_kind_roundtrips() {
        for op in [
            OpKind::Input,
            OpKind::Add,
            OpKind::Sub,
            OpKind::Mul,
            OpKind::Div,
            OpKind::Sum,
            OpKind::Butterfly,
            OpKind::BhkUpdate,
            OpKind::Custom(42),
        ] {
            let back = OpKind::from_json(&op.to_json()).unwrap();
            assert_eq!(op, back);
        }
        assert!(OpKind::from_json(&JsonValue::String("Nope".into())).is_err());
    }

    #[test]
    fn edge_list_roundtrips() {
        let el = EdgeListGraph {
            ops: vec![OpKind::Input, OpKind::Input, OpKind::Custom(3)],
            edges: vec![(0, 2), (1, 2)],
        };
        let json = el.to_json();
        assert_eq!(
            json,
            r#"{"ops":["Input","Input",{"Custom":3}],"edges":[[0,2],[1,2]]}"#
        );
        assert_eq!(EdgeListGraph::from_json(&json).unwrap(), el);
    }

    #[test]
    fn edge_list_schema_errors_are_clear() {
        assert!(EdgeListGraph::from_json(r#"{"edges":[]}"#).is_err());
        assert!(EdgeListGraph::from_json(r#"{"ops":[],"edges":[[0]]}"#).is_err());
        assert!(EdgeListGraph::from_json(r#"{"ops":[],"edges":[[0,-1]]}"#).is_err());
    }
}
