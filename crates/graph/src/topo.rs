//! Topological evaluation orders.
//!
//! The paper's optimization is over all topological orders `X ∈ O_G`
//! (§3.1). Lower bounds hold for *every* order, so the simulator and the
//! test suite exercise several deterministic heuristics plus uniform-ish
//! random orders to probe the bound from above.

use crate::dag::CompGraph;
use rand::Rng;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Kahn's algorithm breaking ties by smallest vertex id — a deterministic
/// "natural" order (generators emit vertices in a sensible creation order,
/// so this usually matches the hand-written loop nest).
pub fn natural_order(g: &CompGraph) -> Vec<usize> {
    let n = g.n();
    let mut indeg: Vec<usize> = (0..n).map(|v| g.in_degree(v)).collect();
    let mut heap: BinaryHeap<Reverse<usize>> =
        (0..n).filter(|&v| indeg[v] == 0).map(Reverse).collect();
    let mut order = Vec::with_capacity(n);
    while let Some(Reverse(v)) = heap.pop() {
        order.push(v);
        for &c in g.children(v) {
            let c = c as usize;
            indeg[c] -= 1;
            if indeg[c] == 0 {
                heap.push(Reverse(c));
            }
        }
    }
    order
}

/// Depth-first order: finishes one dependency chain before starting the
/// next. Often far more cache-friendly than breadth-first evaluation, which
/// makes it a good upper-bound probe for the simulator.
pub fn dfs_order(g: &CompGraph) -> Vec<usize> {
    let n = g.n();
    let mut unmet: Vec<usize> = (0..n).map(|v| g.in_degree(v)).collect();
    let mut order = Vec::with_capacity(n);
    let mut stack: Vec<usize> = (0..n).rev().filter(|&v| unmet[v] == 0).collect();
    while let Some(v) = stack.pop() {
        order.push(v);
        // Push children whose dependencies are now met; last child pushed is
        // explored first, giving the depth-first flavour.
        for &c in g.children(v) {
            let c = c as usize;
            unmet[c] -= 1;
            if unmet[c] == 0 {
                stack.push(c);
            }
        }
    }
    order
}

/// Breadth-first (level) order: evaluates the whole frontier before
/// descending — typically the worst reasonable order for locality, useful
/// as the pessimistic upper-bound probe.
pub fn bfs_order(g: &CompGraph) -> Vec<usize> {
    let n = g.n();
    let mut indeg: Vec<usize> = (0..n).map(|v| g.in_degree(v)).collect();
    let mut queue: std::collections::VecDeque<usize> = (0..n).filter(|&v| indeg[v] == 0).collect();
    let mut order = Vec::with_capacity(n);
    while let Some(v) = queue.pop_front() {
        order.push(v);
        for &c in g.children(v) {
            let c = c as usize;
            indeg[c] -= 1;
            if indeg[c] == 0 {
                queue.push_back(c);
            }
        }
    }
    order
}

/// A random topological order: Kahn's algorithm choosing uniformly among
/// the currently ready vertices. (Not uniform over all linear extensions,
/// but more than random enough for property tests.)
pub fn random_order<R: Rng>(g: &CompGraph, rng: &mut R) -> Vec<usize> {
    let n = g.n();
    let mut indeg: Vec<usize> = (0..n).map(|v| g.in_degree(v)).collect();
    let mut ready: Vec<usize> = (0..n).filter(|&v| indeg[v] == 0).collect();
    let mut order = Vec::with_capacity(n);
    while !ready.is_empty() {
        let pick = rng.gen_range(0..ready.len());
        let v = ready.swap_remove(pick);
        order.push(v);
        for &c in g.children(v) {
            let c = c as usize;
            indeg[c] -= 1;
            if indeg[c] == 0 {
                ready.push(c);
            }
        }
    }
    order
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dag::GraphBuilder;
    use crate::ops::OpKind;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn diamond() -> CompGraph {
        // 0 -> {1, 2} -> 3
        let mut b = GraphBuilder::new();
        let v0 = b.add_vertex(OpKind::Input);
        let v1 = b.add_vertex(OpKind::Add);
        let v2 = b.add_vertex(OpKind::Add);
        let v3 = b.add_vertex(OpKind::Add);
        b.add_edge(v0, v1);
        b.add_edge(v0, v2);
        b.add_edge(v1, v3);
        b.add_edge(v2, v3);
        b.build().unwrap()
    }

    #[test]
    fn all_orders_are_topological() {
        let g = diamond();
        assert!(g.is_topological(&natural_order(&g)));
        assert!(g.is_topological(&dfs_order(&g)));
        assert!(g.is_topological(&bfs_order(&g)));
        let mut rng = StdRng::seed_from_u64(17);
        for _ in 0..20 {
            assert!(g.is_topological(&random_order(&g, &mut rng)));
        }
    }

    #[test]
    fn natural_order_breaks_ties_by_id() {
        let g = diamond();
        assert_eq!(natural_order(&g), vec![0, 1, 2, 3]);
    }

    #[test]
    fn dfs_explores_chains_first() {
        // Two independent chains 0->1->2 and 3->4->5; DFS should complete
        // one chain before the other.
        let mut b = GraphBuilder::new();
        for _ in 0..6 {
            b.add_vertex(OpKind::Add);
        }
        b.add_edge(0, 1);
        b.add_edge(1, 2);
        b.add_edge(3, 4);
        b.add_edge(4, 5);
        let g = b.build().unwrap();
        let order = dfs_order(&g);
        assert!(g.is_topological(&order));
        let pos: Vec<usize> = {
            let mut p = vec![0; 6];
            for (i, &v) in order.iter().enumerate() {
                p[v] = i;
            }
            p
        };
        // Chain contiguity: positions within each chain are consecutive.
        assert_eq!(pos[1], pos[0] + 1);
        assert_eq!(pos[2], pos[0] + 2);
        assert_eq!(pos[4], pos[3] + 1);
        assert_eq!(pos[5], pos[3] + 2);
    }

    #[test]
    fn random_orders_differ_across_seeds() {
        // With two independent chains there are many linear extensions;
        // two different seeds should (almost surely) give different orders.
        let mut b = GraphBuilder::new();
        for _ in 0..12 {
            b.add_vertex(OpKind::Add);
        }
        for i in 0..5 {
            b.add_edge(i, i + 1);
            b.add_edge(i + 6, i + 7);
        }
        let g = b.build().unwrap();
        let o1 = random_order(&g, &mut StdRng::seed_from_u64(1));
        let o2 = random_order(&g, &mut StdRng::seed_from_u64(2));
        assert!(g.is_topological(&o1));
        assert!(g.is_topological(&o2));
        assert_ne!(o1, o2);
    }
}
