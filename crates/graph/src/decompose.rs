//! Balanced recursive bisection of a computation graph into convex
//! components.
//!
//! The compose analysis mode (`spectral::compose`) bounds a huge graph by
//! bounding each piece of a *convex partition* and stitching the pieces
//! back together with Lemma-1 segment accounting. The partition quality
//! determines the composed bound's tightness, but its **convexity** is
//! what makes the composition sound: every component must be a union of
//! contiguous segments of some topological order, so per-component
//! segment costs inject into a refinement of that order.
//!
//! This driver guarantees convexity by construction: vertices are laid
//! out in the `(longest-path depth, id)` topological order and components
//! are *contiguous ranges* of that order (any contiguous range of a
//! topological order is convex — positions strictly increase along
//! directed paths, so a path between two in-range vertices cannot leave
//! the range). Recursive bisection then picks each cut inside a balance
//! window, preferring **depth boundaries** (positions where the
//! longest-path depth strictly increases): a depth-boundary cut splits
//! the vertex *set* by a depth threshold, which is relabeling-invariant,
//! so the resulting component fingerprints are stable under vertex
//! renumbering and can be shared across the fleet's caches. Within the
//! admissible cut positions the driver minimizes crossing edges (the
//! quantity the composed bound pays for).
//!
//! When a single depth level spans the whole balance window (very fat
//! layers, e.g. naive matmul's product layer) there is no invariant cut;
//! the driver falls back to the best position in the window and reports
//! [`Decomposition::invariant`]` = false` so callers know the component
//! fingerprints are layout-dependent for this graph.

use crate::dag::{CompGraph, GraphBuilder};

/// Tuning for [`decompose`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DecomposeOptions {
    /// Maximum component size: bisection stops once a range has at most
    /// this many vertices.
    pub target: usize,
}

impl DecomposeOptions {
    /// The schedule used by the compose analysis mode: aim for ~64
    /// components, but never smaller than 512 vertices (overhead
    /// dominates) and never larger than 65 536 (keeps every component in
    /// the certified Lanczos tier — the whole point of composing is to
    /// avoid the estimate tier's `RitzSweep`).
    pub fn for_graph_size(n: usize) -> Self {
        DecomposeOptions {
            target: n.div_ceil(64).clamp(512, 65_536),
        }
    }
}

/// A convex partition of a graph's vertices, produced by [`decompose`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Decomposition {
    /// The components, each a sorted list of original vertex ids. They
    /// are disjoint, cover every vertex, and each is convex in the graph.
    /// Ordered by position in the underlying topological order, so
    /// component boundaries are reproducible.
    pub components: Vec<Vec<u32>>,
    /// Directed edges whose endpoints land in different components.
    pub cut_edges: usize,
    /// True when every cut was taken at a longest-path-depth boundary, in
    /// which case each component's vertex *set* is determined by
    /// relabeling-invariant data and component fingerprints are stable
    /// under vertex renumbering.
    pub invariant: bool,
    /// The size cap the decomposition was computed for.
    pub target: usize,
}

impl Decomposition {
    /// Largest component size (0 for the empty decomposition).
    pub fn max_component(&self) -> usize {
        self.components.iter().map(Vec::len).max().unwrap_or(0)
    }
}

/// Longest-path depth of every vertex from the sources (Kahn sweep).
fn longest_path_depth(g: &CompGraph) -> Vec<u64> {
    let n = g.n();
    let mut depth = vec![0u64; n];
    let mut indeg: Vec<usize> = (0..n).map(|v| g.in_degree(v)).collect();
    let mut queue: Vec<usize> = (0..n).filter(|&v| indeg[v] == 0).collect();
    while let Some(v) = queue.pop() {
        for &w in g.children(v) {
            let w = w as usize;
            depth[w] = depth[w].max(depth[v] + 1);
            indeg[w] -= 1;
            if indeg[w] == 0 {
                queue.push(w);
            }
        }
    }
    depth
}

/// Cuts `g` into convex components of at most `opts.target` vertices by
/// balanced recursive bisection of the `(depth, id)` topological order
/// (see the module docs for the cut-selection rules).
pub fn decompose(g: &CompGraph, opts: &DecomposeOptions) -> Decomposition {
    let n = g.n();
    let target = opts.target.max(1);
    if n == 0 {
        return Decomposition {
            components: Vec::new(),
            cut_edges: 0,
            invariant: true,
            target,
        };
    }
    let depth = longest_path_depth(g);
    let mut order: Vec<u32> = (0..n as u32).collect();
    order.sort_unstable_by_key(|&v| (depth[v as usize], v));
    let mut pos = vec![0usize; n];
    for (p, &v) in order.iter().enumerate() {
        pos[v as usize] = p;
    }

    let mut cuts: Vec<usize> = Vec::new();
    let mut invariant = true;
    let mut ranges = vec![(0usize, n)];
    let mut crossing = Vec::new();
    while let Some((lo, hi)) = ranges.pop() {
        let len = hi - lo;
        if len <= target {
            continue;
        }
        // crossing[p] = edges (u, v) inside the range with
        // pos(u) < lo + p <= pos(v): the cost of cutting between
        // positions lo+p-1 and lo+p. Edges leaving the range are cut at
        // an outer level no matter what we pick here, so they are
        // excluded. Built as a difference array over the range, then
        // prefix-summed.
        crossing.clear();
        crossing.resize(len + 1, 0i64);
        for p in lo..hi {
            let u = order[p] as usize;
            for &c in g.children(u) {
                let pc = pos[c as usize];
                if pc < hi {
                    crossing[p + 1 - lo] += 1;
                    crossing[pc + 1 - lo] -= 1;
                }
            }
        }
        for p in 1..=len {
            crossing[p] += crossing[p - 1];
        }
        // Balance window: both halves keep at least a quarter of the
        // range, so bisection depth stays logarithmic.
        let wlo = (len / 4).max(1);
        let whi = (3 * len / 4).min(len - 1);
        let is_boundary =
            |p: usize| depth[order[lo + p] as usize] != depth[order[lo + p - 1] as usize];
        // Ties break toward the earliest position (min_by_key keeps the
        // first minimum), so cut selection is deterministic.
        let best_in = |boundaries_only: bool| -> Option<usize> {
            (wlo..=whi)
                .filter(|&p| !boundaries_only || is_boundary(p))
                .min_by_key(|&p| crossing[p])
        };
        let cut_rel = match best_in(true) {
            Some(p) => p,
            None => {
                // One depth level fills the window: no relabeling-
                // invariant cut exists here.
                invariant = false;
                best_in(false).expect("window is non-empty for len >= 2")
            }
        };
        let cut = lo + cut_rel;
        cuts.push(cut);
        ranges.push((lo, cut));
        ranges.push((cut, hi));
    }

    cuts.sort_unstable();
    let mut components = Vec::with_capacity(cuts.len() + 1);
    let mut comp_of = vec![0u32; n];
    let mut start = 0usize;
    for end in cuts.into_iter().chain(std::iter::once(n)) {
        let idx = components.len() as u32;
        let mut verts: Vec<u32> = order[start..end].to_vec();
        for &v in &verts {
            comp_of[v as usize] = idx;
        }
        verts.sort_unstable();
        components.push(verts);
        start = end;
    }
    let cut_edges = g.edges().filter(|&(u, v)| comp_of[u] != comp_of[v]).count();
    Decomposition {
        components,
        cut_edges,
        invariant,
        target,
    }
}

/// The subgraph of `g` induced by `vertices` (which must be sorted and
/// duplicate-free, as produced by [`decompose`]): local vertex `i` is
/// `vertices[i]`, keeping its operation; every edge of `g` with both
/// endpoints in the set is kept (parallel edges included).
///
/// # Panics
/// Panics if `vertices` contains an id `>= g.n()`.
pub fn induced_subgraph(g: &CompGraph, vertices: &[u32]) -> CompGraph {
    let mut b = GraphBuilder::with_capacity(vertices.len(), 0);
    for &v in vertices {
        b.add_vertex(g.op(v as usize));
    }
    let local = |v: u32| vertices.binary_search(&v).ok();
    for (lu, &u) in vertices.iter().enumerate() {
        for &c in g.children(u as usize) {
            if let Some(lc) = local(c) {
                b.add_edge(lu as u32, lc as u32);
            }
        }
    }
    b.build().expect("induced subgraph of a DAG is a valid DAG")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dag::EdgeListGraph;
    use crate::fingerprint::{fingerprint, Fingerprint};
    use crate::generators::{diamond_dag, fft_butterfly, naive_matmul};
    use crate::ops::OpKind;

    fn check_partition(g: &CompGraph, d: &Decomposition) {
        let mut seen = vec![false; g.n()];
        for comp in &d.components {
            assert!(!comp.is_empty(), "no empty components");
            assert!(
                comp.windows(2).all(|w| w[0] < w[1]),
                "sorted, duplicate-free"
            );
            assert!(comp.len() <= d.target, "component exceeds target");
            for &v in comp {
                assert!(
                    !std::mem::replace(&mut seen[v as usize], true),
                    "vertex {v} in two components"
                );
            }
        }
        assert!(seen.iter().all(|&s| s), "every vertex covered");
    }

    /// Direct convexity check (small graphs only): no directed path
    /// leaves a component and comes back.
    fn check_convex(g: &CompGraph, comp: &[u32]) {
        let inside = |v: usize| comp.binary_search(&(v as u32)).is_ok();
        for w in 0..g.n() {
            if inside(w) {
                continue;
            }
            let from_comp = g.ancestors(w).iter().any(|&u| inside(u));
            let to_comp = g.descendants(w).iter().any(|&v| inside(v));
            assert!(
                !(from_comp && to_comp),
                "vertex {w} lies on a path through the component"
            );
        }
    }

    #[test]
    fn partitions_cover_and_respect_target() {
        for (g, target) in [
            (fft_butterfly(5), 40),
            (diamond_dag(12, 12), 30),
            (naive_matmul(4), 25),
        ] {
            let d = decompose(&g, &DecomposeOptions { target });
            check_partition(&g, &d);
            assert!(d.components.len() >= 2, "large graph must split");
            let edges_inside: usize = d
                .components
                .iter()
                .map(|c| induced_subgraph(&g, c).num_edges())
                .sum();
            assert_eq!(edges_inside + d.cut_edges, g.num_edges());
        }
    }

    #[test]
    fn components_are_convex() {
        for (g, target) in [(fft_butterfly(4), 20), (diamond_dag(8, 8), 16)] {
            let d = decompose(&g, &DecomposeOptions { target });
            for comp in &d.components {
                check_convex(&g, comp);
            }
        }
    }

    #[test]
    fn single_component_below_target() {
        let g = fft_butterfly(3);
        let d = decompose(&g, &DecomposeOptions { target: g.n() });
        assert_eq!(d.components.len(), 1);
        assert_eq!(d.cut_edges, 0);
        assert!(d.invariant);
        let sub = induced_subgraph(&g, &d.components[0]);
        assert_eq!(fingerprint(&sub), fingerprint(&g));
    }

    #[test]
    fn empty_graph_decomposes_to_nothing() {
        let g = GraphBuilder::new().build().unwrap();
        let d = decompose(&g, &DecomposeOptions { target: 8 });
        assert!(d.components.is_empty());
        assert!(d.invariant);
        assert_eq!(d.cut_edges, 0);
    }

    #[test]
    fn decomposition_is_deterministic() {
        let g = diamond_dag(10, 10);
        let opts = DecomposeOptions { target: 24 };
        assert_eq!(decompose(&g, &opts), decompose(&g, &opts));
    }

    fn relabel(g: &CompGraph, perm: &[u32]) -> CompGraph {
        let mut ops = vec![OpKind::Input; g.n()];
        for v in 0..g.n() {
            ops[perm[v] as usize] = g.op(v);
        }
        let edges = g
            .edges()
            .map(|(u, v)| (perm[u], perm[v]))
            .collect::<Vec<_>>();
        CompGraph::try_from(EdgeListGraph { ops, edges }).unwrap()
    }

    #[test]
    fn invariant_decomposition_survives_relabeling() {
        // Layered graphs cut at depth boundaries, so the component
        // fingerprint multiset must not move under renumbering.
        let g = fft_butterfly(4);
        let opts = DecomposeOptions { target: 20 };
        let d = decompose(&g, &opts);
        assert!(d.invariant, "butterfly layers give invariant cuts");
        let n = g.n() as u32;
        let perm: Vec<u32> = (0..n).map(|v| (v.wrapping_mul(37) + 11) % n).collect();
        let mut seen = vec![false; n as usize];
        for &p in &perm {
            assert!(!std::mem::replace(&mut seen[p as usize], true));
        }
        let h = relabel(&g, &perm);
        let dh = decompose(&h, &opts);
        assert!(dh.invariant);
        let fps = |g: &CompGraph, d: &Decomposition| -> Vec<Fingerprint> {
            let mut f: Vec<Fingerprint> = d
                .components
                .iter()
                .map(|c| fingerprint(&induced_subgraph(g, c)))
                .collect();
            f.sort_unstable();
            f
        };
        assert_eq!(fps(&g, &d), fps(&h, &dh));
        assert_eq!(d.cut_edges, dh.cut_edges);
    }

    #[test]
    fn fat_layer_fallback_is_flagged() {
        // naive_matmul's product layer is one giant depth level: cutting
        // through it cannot be relabeling-invariant, and the driver must
        // say so.
        let g = naive_matmul(4);
        let d = decompose(&g, &DecomposeOptions { target: 20 });
        assert!(!d.invariant);
        check_partition(&g, &d);
    }

    #[test]
    fn schedule_clamps_target() {
        assert_eq!(DecomposeOptions::for_graph_size(100).target, 512);
        assert_eq!(DecomposeOptions::for_graph_size(1_000_000).target, 15_625);
        assert_eq!(DecomposeOptions::for_graph_size(100_000_000).target, 65_536);
    }

    #[test]
    fn induced_subgraph_keeps_parallel_edges() {
        let mut b = GraphBuilder::new();
        let x = b.add_vertex(OpKind::Input);
        let y = b.add_vertex(OpKind::Mul);
        let z = b.add_vertex(OpKind::Add);
        b.add_edge(x, y);
        b.add_edge(x, y);
        b.add_edge(y, z);
        let g = b.build().unwrap();
        let sub = induced_subgraph(&g, &[0, 1]);
        assert_eq!(sub.n(), 2);
        assert_eq!(sub.num_edges(), 2);
        assert_eq!(sub.parents(1), &[0, 0]);
    }
}
