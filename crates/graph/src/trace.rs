//! The §6.1 "solver": extract a computation graph by tracing an ordinary
//! program.
//!
//! The paper's evaluation harness traces Python arithmetic; the Rust
//! equivalent is a [`Tracer`] handing out [`Tv`] ("traced value") handles
//! whose arithmetic operators record one graph vertex per operation.
//! Custom (n-ary) operations are supported via [`Tracer::custom_op`],
//! mirroring the paper's "supports the inclusion of custom operations".
//!
//! ```
//! use graphio_graph::trace::Tracer;
//!
//! let tracer = Tracer::new();
//! let x = tracer.inputs(2);
//! let y = &x[0] * &x[1] + &x[0];
//! let g = tracer.finish();
//! assert_eq!(g.n(), 4);           // 2 inputs, 1 mul, 1 add
//! assert_eq!(g.sinks(), vec![y.id() as usize]);
//! ```

use crate::dag::{CompGraph, GraphBuilder};
use crate::ops::OpKind;
use std::ops::{Add, Div, Mul, Sub};
use std::sync::{Arc, Mutex};

#[derive(Default)]
struct TraceState {
    builder: GraphBuilder,
}

/// Records a computation graph from overloaded arithmetic.
///
/// Cloning a `Tracer` yields another handle to the same recording; traced
/// values keep their tracer alive. Thread-safe (the state sits behind a
/// `std::sync::Mutex`), so traced computations may themselves be
/// parallel.
#[derive(Clone, Default)]
pub struct Tracer {
    state: Arc<Mutex<TraceState>>,
}

impl Tracer {
    /// Creates an empty tracer.
    pub fn new() -> Self {
        Tracer::default()
    }

    /// Registers a fresh program input.
    pub fn input(&self) -> Tv {
        let id = self
            .state
            .lock()
            .expect("tracer mutex poisoned")
            .builder
            .add_vertex(OpKind::Input);
        Tv {
            id,
            tracer: self.clone(),
        }
    }

    /// Registers `count` fresh inputs.
    pub fn inputs(&self, count: usize) -> Vec<Tv> {
        (0..count).map(|_| self.input()).collect()
    }

    /// Records an n-ary operation consuming `operands`.
    ///
    /// # Panics
    /// Panics if an operand belongs to a different tracer.
    pub fn custom_op(&self, op: OpKind, operands: &[&Tv]) -> Tv {
        for t in operands {
            assert!(
                Arc::ptr_eq(&self.state, &t.tracer.state),
                "operand from a different tracer"
            );
        }
        let mut st = self.state.lock().expect("tracer mutex poisoned");
        let id = st.builder.add_vertex(op);
        for t in operands {
            st.builder.add_edge(t.id, id);
        }
        Tv {
            id,
            tracer: self.clone(),
        }
    }

    /// Number of vertices recorded so far.
    pub fn recorded_vertices(&self) -> usize {
        self.state
            .lock()
            .expect("tracer mutex poisoned")
            .builder
            .n()
    }

    /// Freezes the recording into a [`CompGraph`].
    ///
    /// # Panics
    /// Never in practice: traces are acyclic by construction (every vertex
    /// only consumes previously created vertices).
    pub fn finish(self) -> CompGraph {
        let state = std::mem::take(&mut *self.state.lock().expect("tracer mutex poisoned"));
        state
            .builder
            .build()
            .expect("a trace is acyclic by construction")
    }
}

/// A traced scalar value: a handle to one computation-graph vertex.
#[derive(Clone)]
pub struct Tv {
    id: u32,
    tracer: Tracer,
}

impl Tv {
    /// The vertex id of this value in the final graph.
    pub fn id(&self) -> u32 {
        self.id
    }

    fn binary(&self, other: &Tv, op: OpKind) -> Tv {
        self.tracer.custom_op(op, &[self, other])
    }
}

macro_rules! impl_binop {
    ($trait:ident, $method:ident, $op:expr) => {
        impl $trait for &Tv {
            type Output = Tv;
            fn $method(self, rhs: &Tv) -> Tv {
                self.binary(rhs, $op)
            }
        }
        impl $trait<Tv> for Tv {
            type Output = Tv;
            fn $method(self, rhs: Tv) -> Tv {
                self.binary(&rhs, $op)
            }
        }
        impl $trait<&Tv> for Tv {
            type Output = Tv;
            fn $method(self, rhs: &Tv) -> Tv {
                self.binary(rhs, $op)
            }
        }
        impl $trait<Tv> for &Tv {
            type Output = Tv;
            fn $method(self, rhs: Tv) -> Tv {
                self.binary(&rhs, $op)
            }
        }
    };
}

impl_binop!(Add, add, OpKind::Add);
impl_binop!(Sub, sub, OpKind::Sub);
impl_binop!(Mul, mul, OpKind::Mul);
impl_binop!(Div, div, OpKind::Div);

/// Traces the inner product of two `k`-vectors with an n-ary sum —
/// produces exactly [`crate::generators::inner_product`]'s graph.
pub fn trace_inner_product(k: usize) -> CompGraph {
    let tracer = Tracer::new();
    let xs = tracer.inputs(k);
    let ys = tracer.inputs(k);
    let prods: Vec<Tv> = xs.iter().zip(ys.iter()).map(|(x, y)| x * y).collect();
    let refs: Vec<&Tv> = prods.iter().collect();
    let _sum = tracer.custom_op(OpKind::Sum, &refs);
    tracer.finish()
}

/// Traces an iterative radix-2 FFT over `2^l` traced inputs; each stage
/// output is one two-operand [`OpKind::Butterfly`] vertex, so the result is
/// exactly [`crate::generators::fft_butterfly`]'s graph.
pub fn trace_fft(l: usize) -> CompGraph {
    let tracer = Tracer::new();
    let rows = 1usize << l;
    let mut layer = tracer.inputs(rows);
    for t in 0..l {
        let span = 1usize << t;
        let mut next = Vec::with_capacity(rows);
        for r in 0..rows {
            // Output r of this stage combines rows r and r ^ span.
            let a = &layer[r];
            let b = &layer[r ^ span];
            next.push(tracer.custom_op(OpKind::Butterfly, &[a, b]));
        }
        layer = next;
    }
    drop(layer);
    tracer.finish()
}

/// Traces naive `n × n` matrix multiplication with n-ary output sums —
/// produces exactly [`crate::generators::naive_matmul`]'s graph.
pub fn trace_naive_matmul(n: usize) -> CompGraph {
    let tracer = Tracer::new();
    let a = tracer.inputs(n * n);
    let b = tracer.inputs(n * n);
    for i in 0..n {
        for j in 0..n {
            let prods: Vec<Tv> = (0..n).map(|k| &a[i * n + k] * &b[k * n + j]).collect();
            let refs: Vec<&Tv> = prods.iter().collect();
            let _cij = tracer.custom_op(OpKind::Sum, &refs);
        }
    }
    tracer.finish()
}

/// Traces Strassen's recursive matrix multiplication written naturally
/// over traced values — produces exactly
/// [`crate::generators::strassen_matmul`]'s graph (same op order, same
/// 4-ary output combinations).
///
/// # Panics
/// Panics unless `n` is a positive power of two.
pub fn trace_strassen(n: usize) -> CompGraph {
    assert!(
        n >= 1 && n.is_power_of_two(),
        "strassen needs a power of two"
    );
    let tracer = Tracer::new();
    let a = tracer.inputs(n * n);
    let b = tracer.inputs(n * n);
    let _c = strassen_rec_traced(&tracer, &a, &b, n);
    tracer.finish()
}

fn quadrant_traced(m: &[Tv], size: usize, qi: usize, qj: usize) -> Vec<Tv> {
    let h = size / 2;
    let mut out = Vec::with_capacity(h * h);
    for i in 0..h {
        for j in 0..h {
            out.push(m[(qi * h + i) * size + (qj * h + j)].clone());
        }
    }
    out
}

fn elementwise_traced(op: OpKind, x: &[Tv], y: &[Tv], tracer: &Tracer) -> Vec<Tv> {
    x.iter()
        .zip(y.iter())
        .map(|(a, b)| tracer.custom_op(op, &[a, b]))
        .collect()
}

fn combine4_traced(tracer: &Tracer, t1: &[Tv], t2: &[Tv], t3: &[Tv], t4: &[Tv]) -> Vec<Tv> {
    (0..t1.len())
        .map(|i| tracer.custom_op(OpKind::Sum, &[&t1[i], &t2[i], &t3[i], &t4[i]]))
        .collect()
}

fn strassen_rec_traced(tracer: &Tracer, a: &[Tv], b: &[Tv], size: usize) -> Vec<Tv> {
    if size == 1 {
        return vec![&a[0] * &b[0]];
    }
    let h = size / 2;
    let a11 = quadrant_traced(a, size, 0, 0);
    let a12 = quadrant_traced(a, size, 0, 1);
    let a21 = quadrant_traced(a, size, 1, 0);
    let a22 = quadrant_traced(a, size, 1, 1);
    let b11 = quadrant_traced(b, size, 0, 0);
    let b12 = quadrant_traced(b, size, 0, 1);
    let b21 = quadrant_traced(b, size, 1, 0);
    let b22 = quadrant_traced(b, size, 1, 1);

    let s1 = elementwise_traced(OpKind::Add, &a11, &a22, tracer);
    let t1 = elementwise_traced(OpKind::Add, &b11, &b22, tracer);
    let m1 = strassen_rec_traced(tracer, &s1, &t1, h);

    let s2 = elementwise_traced(OpKind::Add, &a21, &a22, tracer);
    let m2 = strassen_rec_traced(tracer, &s2, &b11, h);

    let t3 = elementwise_traced(OpKind::Sub, &b12, &b22, tracer);
    let m3 = strassen_rec_traced(tracer, &a11, &t3, h);

    let t4 = elementwise_traced(OpKind::Sub, &b21, &b11, tracer);
    let m4 = strassen_rec_traced(tracer, &a22, &t4, h);

    let s5 = elementwise_traced(OpKind::Add, &a11, &a12, tracer);
    let m5 = strassen_rec_traced(tracer, &s5, &b22, h);

    let s6 = elementwise_traced(OpKind::Sub, &a21, &a11, tracer);
    let t6 = elementwise_traced(OpKind::Add, &b11, &b12, tracer);
    let m6 = strassen_rec_traced(tracer, &s6, &t6, h);

    let s7 = elementwise_traced(OpKind::Sub, &a12, &a22, tracer);
    let t7 = elementwise_traced(OpKind::Add, &b21, &b22, tracer);
    let m7 = strassen_rec_traced(tracer, &s7, &t7, h);

    let c11 = combine4_traced(tracer, &m1, &m4, &m5, &m7);
    let c12 = elementwise_traced(OpKind::Add, &m3, &m5, tracer);
    let c21 = elementwise_traced(OpKind::Add, &m2, &m4, tracer);
    let c22 = combine4_traced(tracer, &m1, &m2, &m3, &m6);

    let mut out = vec![None; size * size];
    for i in 0..h {
        for j in 0..h {
            out[i * size + j] = Some(c11[i * h + j].clone());
            out[i * size + (j + h)] = Some(c12[i * h + j].clone());
            out[(i + h) * size + j] = Some(c21[i * h + j].clone());
            out[(i + h) * size + (j + h)] = Some(c22[i * h + j].clone());
        }
    }
    out.into_iter()
        .map(|v| v.expect("all cells filled"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::{fft_butterfly, inner_product, naive_matmul};

    /// Structural equality: same vertex count, ops, and (sorted) parent
    /// lists — sufficient because both constructions emit vertices in the
    /// same creation order.
    fn assert_same_graph(a: &CompGraph, b: &CompGraph) {
        assert_eq!(a.n(), b.n(), "vertex count");
        assert_eq!(a.num_edges(), b.num_edges(), "edge count");
        for v in 0..a.n() {
            assert_eq!(a.op(v), b.op(v), "op at {v}");
            let mut pa: Vec<u32> = a.parents(v).to_vec();
            let mut pb: Vec<u32> = b.parents(v).to_vec();
            pa.sort_unstable();
            pb.sort_unstable();
            assert_eq!(pa, pb, "parents of {v}");
        }
    }

    #[test]
    fn operators_record_vertices() {
        let tracer = Tracer::new();
        let x = tracer.inputs(2);
        let sum = &x[0] + &x[1];
        let prod = &x[0] * &x[1];
        let diff = sum - prod;
        let quot = &diff / &x[1];
        assert_eq!(quot.id(), 5);
        let g = tracer.finish();
        assert_eq!(g.n(), 6);
        assert_eq!(g.op(2), OpKind::Add);
        assert_eq!(g.op(3), OpKind::Mul);
        assert_eq!(g.op(4), OpKind::Sub);
        assert_eq!(g.op(5), OpKind::Div);
        assert_eq!(g.parents(4), &[2, 3]);
    }

    #[test]
    fn squaring_records_parallel_edges() {
        let tracer = Tracer::new();
        let x = tracer.input();
        let _sq = &x * &x;
        let g = tracer.finish();
        assert_eq!(g.num_edges(), 2);
        assert_eq!(g.in_degree(1), 2);
    }

    #[test]
    fn traced_inner_product_matches_generator() {
        for k in [1usize, 2, 5] {
            assert_same_graph(&trace_inner_product(k), &inner_product(k));
        }
    }

    #[test]
    fn traced_fft_matches_generator() {
        for l in 0..5 {
            assert_same_graph(&trace_fft(l), &fft_butterfly(l));
        }
    }

    #[test]
    fn traced_matmul_matches_generator() {
        for n in [1usize, 2, 3] {
            assert_same_graph(&trace_naive_matmul(n), &naive_matmul(n));
        }
    }

    #[test]
    fn traced_strassen_matches_generator() {
        use crate::generators::strassen_matmul;
        for n in [1usize, 2, 4] {
            assert_same_graph(&trace_strassen(n), &strassen_matmul(n));
        }
    }

    #[test]
    #[should_panic(expected = "different tracer")]
    fn mixing_tracers_panics() {
        let t1 = Tracer::new();
        let t2 = Tracer::new();
        let a = t1.input();
        let b = t2.input();
        let _ = &a + &b;
    }

    #[test]
    fn tracer_is_shareable_across_threads() {
        let tracer = Tracer::new();
        let xs = tracer.inputs(8);
        std::thread::scope(|s| {
            for chunk in xs.chunks(2) {
                let a = chunk[0].clone();
                let b = chunk[1].clone();
                s.spawn(move || {
                    let _ = &a + &b;
                });
            }
        });
        let g = tracer.finish();
        assert_eq!(g.n(), 12);
        assert_eq!(g.sinks().len(), 4);
    }
}
