#![allow(clippy::needless_range_loop)] // index-parallel array comparisons read clearest

//! Property-based tests for the linear-algebra substrate.

use graphio_linalg::csr::CsrMatrix;
use graphio_linalg::dense::DenseMatrix;
use graphio_linalg::lanczos::{smallest_eigenvalues, LanczosOptions};
use graphio_linalg::orthogonal::{is_orthogonal, random_orthogonal};
use graphio_linalg::symeig::{eigenvalues_symmetric, eigh};
use graphio_linalg::tridiag::{tridiagonal_eigenvalues, tridiagonal_eigenvalues_bisect};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Strategy: a random symmetric matrix of dimension 1..=12 with entries in
/// [-5, 5].
fn symmetric_matrix() -> impl Strategy<Value = DenseMatrix> {
    (1usize..=12).prop_flat_map(|n| {
        proptest::collection::vec(-5.0f64..5.0, n * n).prop_map(move |data| {
            let mut m = DenseMatrix::from_vec(n, n, data).unwrap();
            for i in 0..n {
                for j in 0..i {
                    let avg = 0.5 * (m[(i, j)] + m[(j, i)]);
                    m[(i, j)] = avg;
                    m[(j, i)] = avg;
                }
            }
            m
        })
    })
}

/// Strategy: a random undirected-graph Laplacian of dimension 2..=14.
fn random_laplacian() -> impl Strategy<Value = DenseMatrix> {
    (2usize..=14).prop_flat_map(|n| {
        proptest::collection::vec(proptest::bool::ANY, n * (n - 1) / 2).prop_map(move |edges| {
            let mut m = DenseMatrix::zeros(n, n);
            let mut idx = 0;
            for i in 0..n {
                for j in (i + 1)..n {
                    if edges[idx] {
                        m[(i, j)] = -1.0;
                        m[(j, i)] = -1.0;
                        m[(i, i)] += 1.0;
                        m[(j, j)] += 1.0;
                    }
                    idx += 1;
                }
            }
            m
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn eigenvalue_sum_equals_trace(a in symmetric_matrix()) {
        let vals = eigenvalues_symmetric(&a).unwrap();
        let sum: f64 = vals.iter().sum();
        let scale = 1.0 + a.trace().abs();
        prop_assert!((sum - a.trace()).abs() < 1e-8 * scale);
    }

    #[test]
    fn eigenvalues_are_sorted(a in symmetric_matrix()) {
        let vals = eigenvalues_symmetric(&a).unwrap();
        for w in vals.windows(2) {
            prop_assert!(w[0] <= w[1] + 1e-12);
        }
    }

    #[test]
    fn eigh_residual_is_small(a in symmetric_matrix()) {
        let n = a.nrows();
        let (vals, v) = eigh(&a).unwrap();
        // ‖A v_i − λ_i v_i‖ small for every i.
        let scale = 1.0 + a.frobenius_norm();
        for i in 0..n {
            let col: Vec<f64> = (0..n).map(|r| v[(r, i)]).collect();
            let mut av = vec![0.0; n];
            a.matvec(&col, &mut av);
            for r in 0..n {
                prop_assert!((av[r] - vals[i] * col[r]).abs() < 1e-7 * scale);
            }
        }
    }

    #[test]
    fn laplacian_is_psd_with_zero_eigenvalue(l in random_laplacian()) {
        let vals = eigenvalues_symmetric(&l).unwrap();
        // PSD and the all-ones vector is in the kernel.
        prop_assert!(vals[0] > -1e-9);
        prop_assert!(vals[0].abs() < 1e-9);
    }

    #[test]
    fn lanczos_agrees_with_dense_on_laplacians(l in random_laplacian()) {
        let n = l.nrows();
        let mut trips = Vec::new();
        for i in 0..n {
            for j in 0..n {
                if l[(i, j)] != 0.0 {
                    trips.push((i, j, l[(i, j)]));
                }
            }
        }
        let csr = CsrMatrix::from_triplets(n, &trips).unwrap();
        let dense_vals = eigenvalues_symmetric(&l).unwrap();
        let h = (n / 2).max(1);
        let r = smallest_eigenvalues(&csr, h, &LanczosOptions::default()).unwrap();
        for i in 0..h {
            prop_assert!(
                (r.values[i] - dense_vals[i]).abs() < 1e-6,
                "i={} lanczos={} dense={}", i, r.values[i], dense_vals[i]
            );
        }
    }

    #[test]
    fn bisect_matches_ql_on_random_tridiagonals(
        d in proptest::collection::vec(-4.0f64..4.0, 1..16),
        seed in 0u64..1000,
    ) {
        let n = d.len();
        let mut rng_vals = Vec::with_capacity(n.saturating_sub(1));
        // Derive deterministic off-diagonals from the seed.
        let mut s = seed;
        for _ in 0..n.saturating_sub(1) {
            s = s.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            rng_vals.push(((s >> 33) as f64 / (1u64 << 31) as f64) - 1.0);
        }
        let all = tridiagonal_eigenvalues(&d, &rng_vals).unwrap();
        let k = (n / 2).max(1);
        let some = tridiagonal_eigenvalues_bisect(&d, &rng_vals, k).unwrap();
        for i in 0..k {
            prop_assert!((some[i] - all[i]).abs() < 1e-7,
                "i={} bisect={} ql={}", i, some[i], all[i]);
        }
    }

    #[test]
    fn random_orthogonal_matrices_are_orthogonal(seed in 0u64..500, n in 1usize..10) {
        let mut rng = StdRng::seed_from_u64(seed);
        let q = random_orthogonal(n, &mut rng);
        prop_assert!(is_orthogonal(&q, 1e-9));
    }

    #[test]
    fn csr_matvec_matches_dense(l in random_laplacian()) {
        let n = l.nrows();
        let mut trips = Vec::new();
        for i in 0..n {
            for j in 0..n {
                if l[(i, j)] != 0.0 {
                    trips.push((i, j, l[(i, j)]));
                }
            }
        }
        let csr = CsrMatrix::from_triplets(n, &trips).unwrap();
        let x: Vec<f64> = (0..n).map(|i| (i as f64).sin()).collect();
        let mut y1 = vec![0.0; n];
        let mut y2 = vec![0.0; n];
        csr.matvec(&x, &mut y1);
        l.matvec(&x, &mut y2);
        for i in 0..n {
            prop_assert!((y1[i] - y2[i]).abs() < 1e-12);
        }
    }

    #[test]
    fn gershgorin_dominates_all_eigenvalues(l in random_laplacian()) {
        let n = l.nrows();
        let mut trips = Vec::new();
        for i in 0..n {
            for j in 0..n {
                if l[(i, j)] != 0.0 {
                    trips.push((i, j, l[(i, j)]));
                }
            }
        }
        let csr = CsrMatrix::from_triplets(n, &trips).unwrap();
        let vals = eigenvalues_symmetric(&l).unwrap();
        prop_assert!(vals[n - 1] <= csr.gershgorin_upper_bound() + 1e-9);
    }
}
