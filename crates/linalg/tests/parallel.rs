//! Thread-count invariance of the parallel execution layer: every kernel
//! must produce results bit-identical to its serial formulation for thread
//! counts 1, 2 and 8 (the satellite contract asks for 1e-12; the chunk-
//! deterministic kernels deliver exact equality).

use graphio_linalg::csr::CsrMatrix;
use graphio_linalg::dense::DenseMatrix;
use graphio_linalg::householder::tridiagonalize_in_place_with_threads;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A banded symmetric matrix big enough to clear every parallel threshold.
fn wide_band_matrix(n: usize, band: usize) -> CsrMatrix {
    let mut trips = Vec::new();
    for i in 0..n {
        trips.push((i, i, 4.0 + (i as f64 * 0.01).sin()));
        for w in 1..band {
            if i + w < n {
                let v = 0.01 * (w as f64) * ((i * w) as f64 * 0.001).cos();
                trips.push((i, i + w, v));
                trips.push((i + w, i, v));
            }
        }
    }
    CsrMatrix::from_triplets(n, &trips).unwrap()
}

#[test]
fn csr_matvec_is_identical_across_thread_counts_1_2_8() {
    let m = wide_band_matrix(4000, 24);
    assert!(m.nnz() >= 1 << 16, "matrix must engage the parallel path");
    let x: Vec<f64> = (0..m.dim()).map(|i| (i as f64 * 0.17).sin()).collect();
    let mut serial = vec![0.0; m.dim()];
    m.matvec(&x, &mut serial);
    for threads in [1usize, 2, 8] {
        let mut y = vec![0.0; m.dim()];
        m.matvec_parallel(&x, &mut y, threads);
        let max_dev = graphio_linalg::vecops::max_abs_diff(&serial, &y);
        assert!(max_dev < 1e-12, "threads={threads}: dev {max_dev}");
        assert_eq!(serial, y, "threads={threads} should be bit-identical");
    }
}

#[test]
fn householder_panels_are_identical_across_thread_counts_1_2_8() {
    // Large enough that the panel kernels actually run in parallel
    // (PARALLEL_PANEL_THRESHOLD rows), small enough for a debug-mode test.
    let n = 320;
    let mut rng = StdRng::seed_from_u64(0xDECA);
    let mut a = DenseMatrix::zeros(n, n);
    for i in 0..n {
        for j in 0..=i {
            let v = rng.gen::<f64>() - 0.5;
            a[(i, j)] = v;
            a[(j, i)] = v;
        }
    }
    let mut reference = a.clone();
    let t1 = tridiagonalize_in_place_with_threads(&mut reference, false, 1);
    for threads in [2usize, 8] {
        let mut work = a.clone();
        let t = tridiagonalize_in_place_with_threads(&mut work, false, threads);
        assert_eq!(t1.d, t.d, "threads={threads}");
        assert_eq!(t1.e, t.e, "threads={threads}");
    }
    // And with eigenvector accumulation.
    let mut q1 = a.clone();
    let tq1 = tridiagonalize_in_place_with_threads(&mut q1, true, 1);
    let mut q8 = a.clone();
    let tq8 = tridiagonalize_in_place_with_threads(&mut q8, true, 8);
    assert_eq!(tq1.d, tq8.d);
    assert_eq!(tq1.e, tq8.e);
    assert_eq!(q1.data(), q8.data());
}
