//! Lanczos iteration with full re-orthogonalization and eigenvector
//! deflation ("locking") for the `h` smallest eigenvalues of a symmetric
//! operator — *with multiplicity*.
//!
//! Why deflation: graph Laplacians of the structured graphs in the paper
//! (hypercubes, butterflies) have eigenvalues of enormous multiplicity, and
//! a single Krylov subspace can represent at most one Ritz pair per distinct
//! eigenvalue. The spectral bound of Theorem 4 sums the `k` smallest
//! eigenvalues *counting multiplicity*, so we must recover copies. Each
//! sweep locks every converged Ritz pair at the bottom of the remaining
//! spectrum, then restarts against the orthogonal complement of everything
//! locked; repeated eigenvalues re-appear in later sweeps until their
//! eigenspaces are exhausted.
//!
//! The smallest eigenvalues of `A` are obtained as the *largest* of
//! `σI − A` (σ = Gershgorin or power-iteration bound), where Lanczos
//! converges fastest. Cost is `O(matvecs · nnz + m²n)` per sweep, matching
//! the `O(hn²)` scalability claim of the paper's §6.5.

use crate::dense::DenseMatrix;
use crate::error::LinalgError;
use crate::linop::{LinOp, ShiftedNegated};
use crate::power::power_iteration;
use crate::tridiag::tql_in_place;
use crate::vecops::{
    axpy, dot, norm2, normalize, orthogonalize_against, orthogonalize_against_parallel, scal,
};
use crate::Result;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Tuning knobs for [`smallest_eigenvalues`].
#[derive(Debug, Clone)]
pub struct LanczosOptions {
    /// Lanczos steps per sweep (the Krylov subspace dimension). Doubled
    /// automatically (up to the operator dimension) when a sweep locks
    /// nothing.
    pub subspace: usize,
    /// Relative residual tolerance for accepting a Ritz pair
    /// (`‖Av − θv‖ ≤ tol · scale`).
    pub tol: f64,
    /// Maximum number of restart sweeps before giving up.
    pub max_sweeps: usize,
    /// RNG seed for start vectors (results are deterministic given a seed).
    pub seed: u64,
}

impl Default for LanczosOptions {
    fn default() -> Self {
        LanczosOptions {
            subspace: 96,
            tol: 1e-9,
            max_sweeps: 512,
            seed: 0x5eed,
        }
    }
}

/// Above this operator dimension the deflated solver bounds its CGS2
/// re-orthogonalization window (full re-orthogonalization is O(m²n) per
/// sweep, which dominates everything else at scale).
const BOUNDED_REORTH_MIN_N: usize = 1 << 18;

/// CGS2 window for [`smallest_eigenvalues`] at dimension `n` — derived
/// from `n` alone (never an option) so a given operator always reduces
/// the same way and cache keys stay exact.
fn reorth_window_for(n: usize) -> usize {
    if n >= BOUNDED_REORTH_MIN_N {
        32
    } else {
        usize::MAX
    }
}

/// Options for [`extreme_ritz_values`] — the fixed-cost single-sweep path
/// the huge-`n` scale tier uses.
#[derive(Debug, Clone)]
pub struct RitzSweepOptions {
    /// Lanczos steps (= Krylov dimension = the exact mat-vec budget).
    pub steps: usize,
    /// CGS2 re-orthogonalization window: each new basis vector is
    /// orthogonalized (two passes) against only the trailing `window`
    /// basis vectors.
    pub reorth_window: usize,
    /// RNG seed for the start vector.
    pub seed: u64,
}

impl Default for RitzSweepOptions {
    fn default() -> Self {
        RitzSweepOptions {
            steps: 96,
            reorth_window: 16,
            seed: 0x5eed,
        }
    }
}

/// Estimates the `h` smallest eigenvalues of `op` from a **single**
/// bounded-window Lanczos sweep: `steps` mat-vecs, then the top `h` Ritz
/// values of the shifted operator, unshifted and sorted ascending.
///
/// This is the huge-`n` scale tier's solver. Unlike
/// [`smallest_eigenvalues`] it never restarts, never widens the subspace,
/// and does not verify multiplicities — its cost is exactly
/// `steps · (matvec + O(window · n))`, deterministic for a given seed.
/// The returned values are Ritz *estimates*: each is an upper bound on
/// the correspondingly-indexed true eigenvalue (Cauchy interlacing), with
/// error governed by the Kaniel–Paige convergence theory rather than a
/// residual tolerance, and repeated eigenvalues are represented once per
/// Krylov subspace. Callers that need certified values at this scale must
/// pay for the deflated solver instead.
///
/// # Errors
/// * [`LinalgError::TooManyEigenvaluesRequested`] if `h > op.dim()`.
pub fn extreme_ritz_values<A: LinOp + ?Sized>(
    op: &A,
    h: usize,
    opts: &RitzSweepOptions,
) -> Result<LanczosResult> {
    let _span = graphio_obs::span!("ritz_sweep");
    let n = op.dim();
    if h > n {
        return Err(LinalgError::TooManyEigenvaluesRequested {
            requested: h,
            dimension: n,
        });
    }
    if h == 0 || n == 0 {
        return Ok(LanczosResult {
            values: Vec::new(),
            sweeps: 0,
            matvecs: 0,
            converged: true,
        });
    }
    let mut matvecs = 0usize;
    let sigma = match op.eigen_upper_bound() {
        Some(s) => s,
        None => {
            let p = power_iteration(op, 2000, 1e-10, 0xacc0)?;
            matvecs += p.iterations;
            p.value.abs() * 1.05 + 1e-9
        }
    };
    let shifted = ShiftedNegated::new(op, sigma);
    let mut rng = StdRng::seed_from_u64(opts.seed);
    let mut v0: Vec<f64> = (0..n).map(|_| rng.gen::<f64>() * 2.0 - 1.0).collect();
    normalize(&mut v0);
    let steps = opts.steps.clamp(h, n);
    let sweep = lanczos_sweep(
        &shifted,
        v0,
        steps,
        &[],
        opts.reorth_window.max(2),
        &mut matvecs,
    );
    let analysis = RitzAnalysis::of(&sweep)?;
    let m = analysis.theta.len();
    let take = h.min(m);
    // Top of the shifted spectrum = bottom of the original.
    let mut values: Vec<f64> = analysis.theta[m - take..]
        .iter()
        .map(|&t| shifted.unshift(t))
        .collect();
    values.sort_by(f64::total_cmp);
    Ok(LanczosResult {
        values,
        sweeps: 1,
        matvecs,
        converged: true,
    })
}

/// Outcome of [`smallest_eigenvalues`].
#[derive(Debug, Clone)]
pub struct LanczosResult {
    /// The locked eigenvalues of the original operator, sorted ascending.
    /// Contains exactly `h` values when `converged` is true.
    pub values: Vec<f64>,
    /// Restart sweeps performed.
    pub sweeps: usize,
    /// Operator applications performed.
    pub matvecs: usize,
    /// Whether all `h` requested eigenvalues were locked.
    pub converged: bool,
}

/// Computes the `h` smallest eigenvalues (ascending, with multiplicity) of
/// the symmetric operator `op`.
///
/// # Errors
/// * [`LinalgError::TooManyEigenvaluesRequested`] if `h > op.dim()`.
/// * [`LinalgError::NoConvergence`] if the sweep budget is exhausted before
///   `h` eigenpairs are locked.
pub fn smallest_eigenvalues<A: LinOp + ?Sized>(
    op: &A,
    h: usize,
    opts: &LanczosOptions,
) -> Result<LanczosResult> {
    let _span = graphio_obs::span!("lanczos");
    let n = op.dim();
    if h > n {
        return Err(LinalgError::TooManyEigenvaluesRequested {
            requested: h,
            dimension: n,
        });
    }
    if h == 0 || n == 0 {
        return Ok(LanczosResult {
            values: Vec::new(),
            sweeps: 0,
            matvecs: 0,
            converged: true,
        });
    }

    let mut matvecs = 0usize;
    // Spectral shift so the target eigenvalues become dominant.
    let sigma = match op.eigen_upper_bound() {
        Some(s) => s,
        None => {
            let p = power_iteration(op, 2000, 1e-10, 0xacc0)?;
            matvecs += p.iterations;
            // Dominant-in-magnitude estimate, inflated for safety.
            p.value.abs() * 1.05 + 1e-9
        }
    };
    let scale = sigma.abs().max(1.0);
    let tol = opts.tol * scale;
    let shifted = ShiftedNegated::new(op, sigma);

    let mut rng = StdRng::seed_from_u64(opts.seed);
    let mut locked_vecs: Vec<Vec<f64>> = Vec::with_capacity(h);
    let mut locked_vals: Vec<f64> = Vec::with_capacity(h);
    let mut sweeps = 0usize;
    let mut subspace = opts.subspace.clamp(2, n);
    // `locked.len() >= h` alone is NOT a sound stop: each sweep locks at
    // most one copy of each distinct eigenvalue, so with high-multiplicity
    // spectra the locked set can contain deep eigenvalues while copies of
    // shallow ones are still un-locked. We therefore also require
    // verification: a sweep whose *top* Ritz pair is converged and lies at
    // or above the h-th smallest locked value proves nothing smaller
    // remains in the deflated operator.
    let mut verified = false;
    let slack = 8.0 * tol + 1e-12;

    while sweeps < opts.max_sweeps {
        if locked_vecs.len() == n {
            verified = true;
        }
        if locked_vecs.len() >= h && verified {
            break;
        }
        sweeps += 1;
        let budget = subspace.min(n - locked_vecs.len());
        let Some(v0) = random_orthogonal_start(n, &locked_vecs, &mut rng) else {
            // The complement of the locked space is numerically exhausted.
            verified = true;
            break;
        };
        let sweep = lanczos_sweep(
            &shifted,
            v0,
            budget,
            &locked_vecs,
            reorth_window_for(n),
            &mut matvecs,
        );
        let analysis = RitzAnalysis::of(&sweep)?;
        if locked_vecs.len() >= h {
            if let Some(remaining_min) = analysis.top_converged_value(tol, &shifted) {
                let kth = kth_smallest(&locked_vals, h);
                if remaining_min >= kth - slack {
                    verified = true;
                    break;
                }
            }
        }
        let newly = lock_converged(
            &sweep,
            &analysis,
            tol,
            &shifted,
            &mut locked_vecs,
            &mut locked_vals,
        );
        if newly == 0 {
            // Stagnation: widen the Krylov subspace (up to n) and try again.
            subspace = (subspace * 2).min(n);
        }
    }

    let converged = locked_vecs.len() >= h && verified;
    if !converged {
        return Err(LinalgError::NoConvergence {
            algorithm: "deflated Lanczos",
            iterations: sweeps,
        });
    }
    locked_vals.sort_by(f64::total_cmp);
    locked_vals.truncate(h);
    Ok(LanczosResult {
        values: locked_vals,
        sweeps,
        matvecs,
        converged,
    })
}

/// The h-th smallest element (1-indexed: `h >= 1`) of `vals`.
fn kth_smallest(vals: &[f64], h: usize) -> f64 {
    let mut sorted = vals.to_vec();
    sorted.sort_by(f64::total_cmp);
    sorted[h - 1]
}

/// Raw output of one Lanczos sweep.
struct Sweep {
    /// Orthonormal Krylov basis vectors `v_0..v_{m-1}`.
    basis: Vec<Vec<f64>>,
    /// Diagonal of the Lanczos tridiagonal matrix.
    alphas: Vec<f64>,
    /// Off-diagonal (`betas[j]` couples steps `j` and `j+1`); the final
    /// entry is the residual norm used in convergence estimates.
    betas: Vec<f64>,
    /// Whether the sweep terminated with an (numerically) invariant
    /// subspace, making every Ritz pair exact.
    invariant: bool,
}

fn lanczos_sweep<A: LinOp + ?Sized>(
    op: &A,
    v0: Vec<f64>,
    budget: usize,
    locked: &[Vec<f64>],
    window: usize,
    matvecs: &mut usize,
) -> Sweep {
    let n = v0.len();
    let mut basis: Vec<Vec<f64>> = Vec::with_capacity(budget);
    let mut alphas: Vec<f64> = Vec::with_capacity(budget);
    let mut betas: Vec<f64> = Vec::with_capacity(budget);
    let mut v = v0;
    let mut w = vec![0.0; n];
    let mut invariant = false;

    for j in 0..budget {
        basis.push(v.clone());
        op.apply(&v, &mut w);
        *matvecs += 1;
        let alpha = dot(&w, &v);
        alphas.push(alpha);
        axpy(-alpha, &v, &mut w);
        if j > 0 {
            let beta_prev = betas[j - 1];
            axpy(-beta_prev, &basis[j - 1], &mut w);
        }
        // Re-orthogonalization, two passes ("twice is enough"). The
        // parallel variant is one classical GS pass; two of them (CGS2)
        // restore orthogonality to machine precision, and this O(m·n) sweep
        // is the Lanczos bottleneck on large graphs — which is why huge
        // operators bound the window to the trailing basis vectors (locked
        // vectors are always swept in full; there are at most `h`).
        let threads = crate::threads::effective_threads();
        let w0 = basis.len().saturating_sub(window);
        for _ in 0..2 {
            orthogonalize_against_parallel(&mut w, locked, threads);
            orthogonalize_against_parallel(&mut w, &basis[w0..], threads);
        }
        let beta = norm2(&w);
        betas.push(beta);
        if beta <= f64::EPSILON * 64.0 * (1.0 + alpha.abs()) {
            invariant = true;
            break;
        }
        scal(1.0 / beta, &mut w);
        std::mem::swap(&mut v, &mut w);
    }
    Sweep {
        basis,
        alphas,
        betas,
        invariant,
    }
}

/// Ritz data extracted from a sweep's tridiagonal matrix.
struct RitzAnalysis {
    /// Ritz values of the shifted operator, ascending (index `m-1` is the
    /// top of the shifted spectrum = bottom of the original spectrum).
    theta: Vec<f64>,
    /// Eigenvectors of the tridiagonal matrix (columns match `theta`).
    z: DenseMatrix,
    /// Final off-diagonal entry (0 when the subspace is invariant).
    beta_last: f64,
    /// Whether the sweep hit an invariant subspace (all pairs exact).
    invariant: bool,
}

impl RitzAnalysis {
    fn of(sweep: &Sweep) -> Result<Self> {
        let m = sweep.alphas.len();
        let mut d = sweep.alphas.clone();
        let mut e = vec![0.0; m];
        if m > 1 {
            e[1..m].copy_from_slice(&sweep.betas[..m - 1]);
        }
        let mut z = DenseMatrix::identity(m);
        tql_in_place(&mut d, &mut e, Some(&mut z))?;
        let beta_last = if sweep.invariant || m == 0 {
            0.0
        } else {
            sweep.betas[m - 1]
        };
        Ok(RitzAnalysis {
            theta: d,
            z,
            beta_last,
            invariant: sweep.invariant,
        })
    }

    fn residual(&self, idx: usize) -> f64 {
        let m = self.theta.len();
        (self.beta_last * self.z[(m - 1, idx)]).abs()
    }

    /// If the top Ritz pair is converged, the smallest eigenvalue of the
    /// deflated *original* operator (within tolerance); `None` otherwise.
    fn top_converged_value<A: LinOp + ?Sized>(
        &self,
        tol: f64,
        shifted: &ShiftedNegated<'_, A>,
    ) -> Option<f64> {
        let m = self.theta.len();
        if m == 0 {
            return None;
        }
        if self.invariant || self.residual(m - 1) <= tol {
            Some(shifted.unshift(self.theta[m - 1]))
        } else {
            None
        }
    }
}

/// Locks converged Ritz pairs from the *top* of the shifted spectrum (the
/// bottom of the original), stopping at the first unconverged pair so the
/// locked set never skips an eigenvalue. Returns the number locked.
fn lock_converged<A: LinOp + ?Sized>(
    sweep: &Sweep,
    analysis: &RitzAnalysis,
    tol: f64,
    shifted: &ShiftedNegated<'_, A>,
    locked_vecs: &mut Vec<Vec<f64>>,
    locked_vals: &mut Vec<f64>,
) -> usize {
    let m = analysis.theta.len();
    if m == 0 {
        return 0;
    }
    let z = &analysis.z;
    let n = sweep.basis[0].len();
    let mut newly = 0usize;
    for idx in (0..m).rev() {
        if analysis.residual(idx) > tol && !analysis.invariant {
            break;
        }
        // Assemble the Ritz vector y = V z_idx.
        let mut y = vec![0.0; n];
        for (jj, basis_v) in sweep.basis.iter().enumerate() {
            axpy(z[(jj, idx)], basis_v, &mut y);
        }
        orthogonalize_against(&mut y, locked_vecs);
        if normalize(&mut y) < 1e-6 {
            // Numerically dependent on already-locked vectors; skip it.
            continue;
        }
        locked_vecs.push(y);
        locked_vals.push(shifted.unshift(analysis.theta[idx]));
        newly += 1;
    }
    newly
}

/// Draws a random unit vector orthogonal to `locked`. Returns `None` when
/// the complement appears numerically empty.
fn random_orthogonal_start(n: usize, locked: &[Vec<f64>], rng: &mut StdRng) -> Option<Vec<f64>> {
    for _ in 0..64 {
        let mut v: Vec<f64> = (0..n).map(|_| rng.gen::<f64>() * 2.0 - 1.0).collect();
        normalize(&mut v);
        for _ in 0..2 {
            orthogonalize_against(&mut v, locked);
        }
        if normalize(&mut v) > 1e-6 {
            return Some(v);
        }
    }
    None
}

#[cfg(test)]
#[allow(clippy::needless_range_loop)] // index-parallel array comparisons read clearest
mod tests {
    use super::*;
    use crate::csr::CsrMatrix;
    use crate::symeig::eigenvalues_symmetric;

    /// Laplacian of the boolean hypercube Q_d (eigenvalue 2i with
    /// multiplicity C(d, i)) — the multiplicity stress test.
    fn hypercube_laplacian(d: usize) -> CsrMatrix {
        let n = 1usize << d;
        let mut trips = Vec::new();
        for u in 0..n {
            trips.push((u, u, d as f64));
            for b in 0..d {
                let v = u ^ (1 << b);
                trips.push((u, v, -1.0));
            }
        }
        CsrMatrix::from_triplets(n, &trips).unwrap()
    }

    #[test]
    fn matches_dense_on_random_sparse() {
        let n = 60;
        let mut trips = Vec::new();
        let mut rng = StdRng::seed_from_u64(11);
        for i in 0..n {
            trips.push((i, i, 4.0 + rng.gen::<f64>()));
            for _ in 0..3 {
                let j = rng.gen_range(0..n);
                if j != i {
                    let v = rng.gen::<f64>() - 0.5;
                    trips.push((i, j, v));
                    trips.push((j, i, v));
                }
            }
        }
        let a = CsrMatrix::from_triplets(n, &trips).unwrap();
        let dense_vals = eigenvalues_symmetric(&a.to_dense()).unwrap();
        let h = 12;
        let r = smallest_eigenvalues(&a, h, &LanczosOptions::default()).unwrap();
        assert!(r.converged);
        for i in 0..h {
            assert!(
                (r.values[i] - dense_vals[i]).abs() < 1e-6,
                "i={i}: {} vs {}",
                r.values[i],
                dense_vals[i]
            );
        }
    }

    #[test]
    fn recovers_hypercube_multiplicities() {
        // Q_5: eigenvalues 0 (x1), 2 (x5), 4 (x10), 6 (x10), 8 (x5), 10 (x1).
        let a = hypercube_laplacian(5);
        let h = 16; // 1 + 5 + 10 = 16 -> last value should be 4.
        let r = smallest_eigenvalues(&a, h, &LanczosOptions::default()).unwrap();
        assert!(r.converged);
        assert!(r.values[0].abs() < 1e-7);
        for i in 1..6 {
            assert!((r.values[i] - 2.0).abs() < 1e-7, "{}", r.values[i]);
        }
        for i in 6..16 {
            assert!((r.values[i] - 4.0).abs() < 1e-7, "{}", r.values[i]);
        }
    }

    #[test]
    fn full_spectrum_of_tiny_operator() {
        let a = hypercube_laplacian(3);
        let r = smallest_eigenvalues(&a, 8, &LanczosOptions::default()).unwrap();
        let expect = [0.0, 2.0, 2.0, 2.0, 4.0, 4.0, 4.0, 6.0];
        for (v, x) in r.values.iter().zip(expect.iter()) {
            assert!((v - x).abs() < 1e-7, "{v} vs {x}");
        }
    }

    #[test]
    fn h_zero_is_trivial() {
        let a = hypercube_laplacian(2);
        let r = smallest_eigenvalues(&a, 0, &LanczosOptions::default()).unwrap();
        assert!(r.converged);
        assert!(r.values.is_empty());
    }

    #[test]
    fn too_many_requested_is_an_error() {
        let a = hypercube_laplacian(2);
        assert!(matches!(
            smallest_eigenvalues(&a, 5, &LanczosOptions::default()),
            Err(LinalgError::TooManyEigenvaluesRequested { .. })
        ));
    }

    #[test]
    fn deterministic_given_seed() {
        let a = hypercube_laplacian(4);
        let opts = LanczosOptions {
            seed: 99,
            ..Default::default()
        };
        let r1 = smallest_eigenvalues(&a, 6, &opts).unwrap();
        let r2 = smallest_eigenvalues(&a, 6, &opts).unwrap();
        assert_eq!(r1.values, r2.values);
        assert_eq!(r1.matvecs, r2.matvecs);
    }

    #[test]
    fn ritz_sweep_estimates_extreme_values() {
        // On a well-separated spectrum a single 48-step sweep nails the
        // smallest eigenvalues to far better than estimate accuracy.
        let n = 60;
        let mut trips = Vec::new();
        let mut rng = StdRng::seed_from_u64(23);
        for i in 0..n {
            trips.push((i, i, 4.0 + rng.gen::<f64>()));
            for _ in 0..3 {
                let j = rng.gen_range(0..n);
                if j != i {
                    let v = rng.gen::<f64>() - 0.5;
                    trips.push((i, j, v));
                    trips.push((j, i, v));
                }
            }
        }
        let a = CsrMatrix::from_triplets(n, &trips).unwrap();
        let dense_vals = eigenvalues_symmetric(&a.to_dense()).unwrap();
        let opts = RitzSweepOptions {
            steps: 48,
            ..Default::default()
        };
        let r = extreme_ritz_values(&a, 6, &opts).unwrap();
        assert_eq!(r.sweeps, 1);
        assert_eq!(r.values.len(), 6);
        for i in 0..6 {
            // Interlacing: each Ritz estimate sits at or above the true
            // eigenvalue of the same index.
            assert!(r.values[i] >= dense_vals[i] - 1e-9);
            assert!(
                (r.values[i] - dense_vals[i]).abs() < 1e-6,
                "i={i}: {} vs {}",
                r.values[i],
                dense_vals[i]
            );
        }
    }

    #[test]
    fn ritz_sweep_is_deterministic_and_fixed_cost() {
        let a = hypercube_laplacian(5);
        let opts = RitzSweepOptions {
            steps: 24,
            reorth_window: 8,
            seed: 7,
        };
        let r1 = extreme_ritz_values(&a, 4, &opts).unwrap();
        let r2 = extreme_ritz_values(&a, 4, &opts).unwrap();
        assert_eq!(r1.values, r2.values);
        assert_eq!(r1.matvecs, r2.matvecs);
        // Q_5's Laplacian has six distinct eigenvalues, so the Krylov
        // space exhausts (happy breakdown) after exactly six applications
        // — never the full 24-step budget. No power iteration runs either:
        // the operator's upper bound 2d is known analytically.
        assert_eq!(r1.matvecs, 6);
        assert!(r1.values[0].abs() < 1e-8, "{}", r1.values[0]);
    }

    #[test]
    fn ritz_sweep_rejects_oversized_h() {
        let a = hypercube_laplacian(2);
        assert!(matches!(
            extreme_ritz_values(&a, 5, &RitzSweepOptions::default()),
            Err(LinalgError::TooManyEigenvaluesRequested { .. })
        ));
    }

    #[test]
    fn small_subspace_still_converges_via_doubling() {
        let a = hypercube_laplacian(4);
        let opts = LanczosOptions {
            subspace: 2,
            ..Default::default()
        };
        let r = smallest_eigenvalues(&a, 8, &opts).unwrap();
        assert!(r.converged);
        let dense_vals = eigenvalues_symmetric(&a.to_dense()).unwrap();
        for i in 0..8 {
            assert!((r.values[i] - dense_vals[i]).abs() < 1e-6);
        }
    }
}
