//! Global instrumentation counters.
//!
//! The spectral engine's cache tests need to prove a negative — "this call
//! did **not** re-run the eigensolver" — so the two eigensolver entry
//! points tick monotone process-global counters: every sparse mat-vec
//! (the unit of Lanczos work) and every dense eigensolve. The SIMD layer
//! ticks two more (kernel entries that dispatched to vector code, and
//! entries that wanted vector code but fell back to scalar), and the
//! spectral scale tier ticks one per non-dense eigensolve, so `/stats`
//! and tests can assert which path ran. Counters are never reset; callers
//! measure deltas. Reads and writes are `Relaxed`: the counters order
//! nothing, and a mat-vec costs orders of magnitude more than the
//! increment.

use std::sync::atomic::{AtomicU64, Ordering};

static SPARSE_MATVECS: AtomicU64 = AtomicU64::new(0);
static DENSE_EIGENSOLVES: AtomicU64 = AtomicU64::new(0);
static SIMD_KERNEL_CALLS: AtomicU64 = AtomicU64::new(0);
static SCALAR_FALLBACKS: AtomicU64 = AtomicU64::new(0);
static SCALE_TIER_SOLVES: AtomicU64 = AtomicU64::new(0);

pub(crate) fn record_sparse_matvec() {
    SPARSE_MATVECS.fetch_add(1, Ordering::Relaxed);
}

pub(crate) fn record_dense_eigensolve() {
    DENSE_EIGENSOLVES.fetch_add(1, Ordering::Relaxed);
}

pub(crate) fn record_simd_kernel_call() {
    SIMD_KERNEL_CALLS.fetch_add(1, Ordering::Relaxed);
}

pub(crate) fn record_scalar_fallback() {
    SCALAR_FALLBACKS.fetch_add(1, Ordering::Relaxed);
}

/// Records one eigensolve dispatched through the sparse scale tier
/// (Lanczos or single-sweep Ritz) rather than the dense path. Public
/// because the tier-selection heuristic lives a crate above
/// (`graphio_spectral::bound`).
pub fn record_scale_tier_solve() {
    SCALE_TIER_SOLVES.fetch_add(1, Ordering::Relaxed);
}

/// Total [`crate::CsrMatrix`] mat-vec applications so far in this process.
pub fn sparse_matvec_count() -> u64 {
    SPARSE_MATVECS.load(Ordering::Relaxed)
}

/// Total dense symmetric eigensolves so far in this process.
pub fn dense_eigensolve_count() -> u64 {
    DENSE_EIGENSOLVES.load(Ordering::Relaxed)
}

/// Total kernel entries that dispatched to SIMD code so far.
pub fn simd_kernel_call_count() -> u64 {
    SIMD_KERNEL_CALLS.load(Ordering::Relaxed)
}

/// Total kernel entries that wanted SIMD but ran scalar (feature not
/// detected at runtime, or an index-width guard tripped).
pub fn scalar_fallback_count() -> u64 {
    SCALAR_FALLBACKS.load(Ordering::Relaxed)
}

/// Total eigensolves dispatched through the sparse scale tier.
pub fn scale_tier_solve_count() -> u64 {
    SCALE_TIER_SOLVES.load(Ordering::Relaxed)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_are_monotone() {
        let before = sparse_matvec_count();
        record_sparse_matvec();
        record_sparse_matvec();
        assert!(sparse_matvec_count() >= before + 2);
        let before = dense_eigensolve_count();
        record_dense_eigensolve();
        assert!(dense_eigensolve_count() > before);
        let before = simd_kernel_call_count();
        record_simd_kernel_call();
        assert!(simd_kernel_call_count() > before);
        let before = scalar_fallback_count();
        record_scalar_fallback();
        assert!(scalar_fallback_count() > before);
        let before = scale_tier_solve_count();
        record_scale_tier_solve();
        assert!(scale_tier_solve_count() > before);
    }
}
