//! Global instrumentation counters.
//!
//! The spectral engine's cache tests need to prove a negative — "this call
//! did **not** re-run the eigensolver" — so the two eigensolver entry
//! points tick monotone process-global counters: every sparse mat-vec
//! (the unit of Lanczos work) and every dense eigensolve. Counters are
//! never reset; callers measure deltas. Reads and writes are `Relaxed`:
//! the counters order nothing, and a mat-vec costs orders of magnitude
//! more than the increment.

use std::sync::atomic::{AtomicU64, Ordering};

static SPARSE_MATVECS: AtomicU64 = AtomicU64::new(0);
static DENSE_EIGENSOLVES: AtomicU64 = AtomicU64::new(0);

pub(crate) fn record_sparse_matvec() {
    SPARSE_MATVECS.fetch_add(1, Ordering::Relaxed);
}

pub(crate) fn record_dense_eigensolve() {
    DENSE_EIGENSOLVES.fetch_add(1, Ordering::Relaxed);
}

/// Total [`crate::CsrMatrix`] mat-vec applications so far in this process.
pub fn sparse_matvec_count() -> u64 {
    SPARSE_MATVECS.load(Ordering::Relaxed)
}

/// Total dense symmetric eigensolves so far in this process.
pub fn dense_eigensolve_count() -> u64 {
    DENSE_EIGENSOLVES.load(Ordering::Relaxed)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_are_monotone() {
        let before = sparse_matvec_count();
        record_sparse_matvec();
        record_sparse_matvec();
        assert!(sparse_matvec_count() >= before + 2);
        let before = dense_eigensolve_count();
        record_dense_eigensolve();
        assert!(dense_eigensolve_count() > before);
    }
}
