//! Compressed sparse row (CSR) storage for symmetric matrices.
//!
//! Graph Laplacians are sparse (`nnz = n + 2|E|`), so the Lanczos path
//! operates on CSR. Mat-vec is provided both serially and in parallel via
//! `std::thread::scope` over row chunks (the offline dependency set has no
//! `rayon`; chunked scoped threads are the idiomatic substitute).
//!
//! Laplacian rows are a handful of scattered entries — too short for
//! in-row SIMD lanes to pay — so alongside the CSR arrays the matrix
//! stores an interleaved (SELL-style) mirror: rows grouped in blocks of
//! [`crate::simd::SELL_ROWS`] = 8, each block padded to its longest row
//! and stored step-major, so one vector register sums 8 rows at once with
//! every row accumulating left to right in column order. The scalar
//! fallback walks the same layout, so mat-vec results are bit-identical
//! across SIMD on/off and across thread counts (chunks align to block
//! boundaries).

use crate::dense::DenseMatrix;
use crate::error::LinalgError;
use crate::Result;

/// Below this work estimate (rows × average nnz) the parallel mat-vec falls
/// back to the serial kernel — thread spawn costs dominate otherwise.
const PARALLEL_WORK_THRESHOLD: usize = 1 << 16;

/// A square sparse matrix in CSR format.
///
/// The structure does not enforce symmetry, but all producers in `graphio`
/// build symmetric matrices and [`CsrMatrix::is_symmetric`] lets tests
/// verify it.
#[derive(Debug, Clone, PartialEq)]
pub struct CsrMatrix {
    n: usize,
    row_ptr: Vec<usize>,
    col_idx: Vec<u32>,
    values: Vec<f64>,
    /// Interleaved-block step offsets: block `b` (rows `b*8 .. b*8+8`)
    /// owns steps `sell_ptr[b] .. sell_ptr[b+1]`; step `s` stores 8
    /// columns at `sell_cols[s*8..]` and 8 values at `sell_vals[s*8..]`
    /// (lane = row within the block, short rows padded with
    /// `(0, 0.0)`).
    sell_ptr: Vec<usize>,
    sell_cols: Vec<u32>,
    sell_vals: Vec<f64>,
}

impl CsrMatrix {
    /// Builds an `n × n` matrix from `(row, col, value)` triplets.
    /// Duplicate coordinates are summed; explicit zeros are dropped.
    ///
    /// # Errors
    /// Returns [`LinalgError::InvalidInput`] if an index is out of range.
    pub fn from_triplets(n: usize, triplets: &[(usize, usize, f64)]) -> Result<Self> {
        for &(r, c, _) in triplets {
            if r >= n || c >= n {
                return Err(LinalgError::InvalidInput(format!(
                    "triplet ({r},{c}) out of range for n={n}"
                )));
            }
        }
        // Counting sort by row, then sort each row's slice by column and
        // accumulate duplicates.
        let mut counts = vec![0usize; n + 1];
        for &(r, _, _) in triplets {
            counts[r + 1] += 1;
        }
        for i in 0..n {
            counts[i + 1] += counts[i];
        }
        let mut cols = vec![0u32; triplets.len()];
        let mut vals = vec![0.0f64; triplets.len()];
        let mut cursor = counts.clone();
        for &(r, c, v) in triplets {
            let slot = cursor[r];
            cols[slot] = c as u32;
            vals[slot] = v;
            cursor[r] += 1;
        }
        let mut row_ptr = Vec::with_capacity(n + 1);
        let mut out_cols: Vec<u32> = Vec::with_capacity(triplets.len());
        let mut out_vals: Vec<f64> = Vec::with_capacity(triplets.len());
        row_ptr.push(0);
        let mut scratch: Vec<(u32, f64)> = Vec::new();
        for r in 0..n {
            scratch.clear();
            scratch.extend(
                cols[counts[r]..counts[r + 1]]
                    .iter()
                    .copied()
                    .zip(vals[counts[r]..counts[r + 1]].iter().copied()),
            );
            scratch.sort_unstable_by_key(|&(c, _)| c);
            let mut i = 0;
            while i < scratch.len() {
                let c = scratch[i].0;
                let mut acc = 0.0;
                while i < scratch.len() && scratch[i].0 == c {
                    acc += scratch[i].1;
                    i += 1;
                }
                if acc != 0.0 {
                    out_cols.push(c);
                    out_vals.push(acc);
                }
            }
            row_ptr.push(out_cols.len());
        }
        let (sell_ptr, sell_cols, sell_vals) = build_sell(n, &row_ptr, &out_cols, &out_vals);
        Ok(CsrMatrix {
            n,
            row_ptr,
            col_idx: out_cols,
            values: out_vals,
            sell_ptr,
            sell_cols,
            sell_vals,
        })
    }

    /// Matrix dimension.
    pub fn dim(&self) -> usize {
        self.n
    }

    /// Number of stored (structurally non-zero) entries.
    pub fn nnz(&self) -> usize {
        self.values.len()
    }

    /// `(columns, values)` of row `i`.
    pub fn row(&self, i: usize) -> (&[u32], &[f64]) {
        let range = self.row_ptr[i]..self.row_ptr[i + 1];
        (&self.col_idx[range.clone()], &self.values[range])
    }

    /// Entry `(i, j)`, or `0.0` if not stored.
    pub fn get(&self, i: usize, j: usize) -> f64 {
        let (cols, vals) = self.row(i);
        match cols.binary_search(&(j as u32)) {
            Ok(pos) => vals[pos],
            Err(_) => 0.0,
        }
    }

    /// Row-range kernel shared by the serial and parallel entry points:
    /// fills `y_chunk` with rows `start..start + y_chunk.len()` of `A x`
    /// from the interleaved mirror. `start` must be a multiple of
    /// [`crate::simd::SELL_ROWS`]; every row accumulates left to right in
    /// column order under every `route`, so results are bit-identical for
    /// every chunking and every SIMD policy (`Fast` shares the `Strict`
    /// kernel — see [`crate::simd::sell_matvec_routed`]).
    fn matvec_rows(&self, x: &[f64], y_chunk: &mut [f64], start: usize, route: crate::simd::Route) {
        debug_assert_eq!(start % crate::simd::SELL_ROWS, 0);
        crate::simd::sell_matvec_routed(
            route,
            &self.sell_ptr,
            &self.sell_cols,
            &self.sell_vals,
            x,
            y_chunk,
            start / crate::simd::SELL_ROWS,
        );
    }

    /// Resolves the SIMD route once per mat-vec: the AVX2 row kernel
    /// gathers through `i32` indices, so matrices wider than `i32::MAX`
    /// columns fall back to the (bit-identical) scalar body.
    fn matvec_route(&self) -> crate::simd::Route {
        if self.n > i32::MAX as usize {
            crate::stats::record_scalar_fallback();
            return crate::simd::Route::Scalar;
        }
        crate::simd::route(self.nnz())
    }

    /// Serial mat-vec `y = A x`.
    ///
    /// # Panics
    /// Panics on dimension mismatch.
    pub fn matvec(&self, x: &[f64], y: &mut [f64]) {
        assert_eq!(x.len(), self.n, "matvec: x length mismatch");
        assert_eq!(y.len(), self.n, "matvec: y length mismatch");
        let _span = graphio_obs::span!("matvec");
        crate::stats::record_sparse_matvec();
        self.matvec_rows(x, y, 0, self.matvec_route());
    }

    /// Parallel mat-vec `y = A x` over row chunks using scoped threads.
    /// Falls back to the serial kernel for small matrices. Bit-identical to
    /// [`CsrMatrix::matvec`] for every thread count.
    ///
    /// # Panics
    /// Panics on dimension mismatch.
    pub fn matvec_parallel(&self, x: &[f64], y: &mut [f64], threads: usize) {
        assert_eq!(x.len(), self.n, "matvec_parallel: x length mismatch");
        assert_eq!(y.len(), self.n, "matvec_parallel: y length mismatch");
        let _span = graphio_obs::span!("matvec");
        let threads = threads.max(1);
        if threads == 1 || self.nnz() < PARALLEL_WORK_THRESHOLD || self.n < threads {
            crate::stats::record_sparse_matvec();
            self.matvec_rows(x, y, 0, self.matvec_route());
            return;
        }
        crate::stats::record_sparse_matvec();
        let route = self.matvec_route();
        // Chunks align to interleaved-block boundaries so every thread
        // owns whole blocks.
        let chunk = self
            .n
            .div_ceil(threads)
            .next_multiple_of(crate::simd::SELL_ROWS);
        std::thread::scope(|s| {
            for (t, y_chunk) in y.chunks_mut(chunk).enumerate() {
                let start = t * chunk;
                s.spawn(move || self.matvec_rows(x, y_chunk, start, route));
            }
        });
    }

    /// Upper bound on the largest eigenvalue by the Gershgorin circle
    /// theorem: `max_i Σ_j |a_ij| + a_ii - |a_ii|` simplifies to
    /// `max_i (a_ii + Σ_{j≠i} |a_ij|)` for real symmetric matrices.
    pub fn gershgorin_upper_bound(&self) -> f64 {
        let mut bound = 0.0f64;
        for i in 0..self.n {
            let (cols, vals) = self.row(i);
            let mut center = 0.0;
            let mut radius = 0.0;
            for (c, v) in cols.iter().zip(vals.iter()) {
                if *c as usize == i {
                    center = *v;
                } else {
                    radius += v.abs();
                }
            }
            bound = bound.max(center + radius);
        }
        bound
    }

    /// Sum of diagonal entries.
    pub fn trace(&self) -> f64 {
        (0..self.n).map(|i| self.get(i, i)).sum()
    }

    /// Exact symmetry check (structural and numerical, up to `tol`).
    pub fn is_symmetric(&self, tol: f64) -> bool {
        for i in 0..self.n {
            let (cols, vals) = self.row(i);
            for (c, v) in cols.iter().zip(vals.iter()) {
                if (self.get(*c as usize, i) - v).abs() > tol {
                    return false;
                }
            }
        }
        true
    }

    /// Dense copy (test/diagnostic use; O(n²) memory).
    pub fn to_dense(&self) -> DenseMatrix {
        let mut m = DenseMatrix::zeros(self.n, self.n);
        for i in 0..self.n {
            let (cols, vals) = self.row(i);
            for (c, v) in cols.iter().zip(vals.iter()) {
                m[(i, *c as usize)] += v;
            }
        }
        m
    }

    /// Quadratic form `xᵀ A x`.
    ///
    /// # Panics
    /// Panics if `x.len() != n`.
    pub fn quadratic_form(&self, x: &[f64]) -> f64 {
        assert_eq!(x.len(), self.n, "quadratic_form: x length mismatch");
        let mut acc = 0.0;
        for i in 0..self.n {
            let (cols, vals) = self.row(i);
            let mut row_dot = 0.0;
            for (c, v) in cols.iter().zip(vals.iter()) {
                row_dot += v * x[*c as usize];
            }
            acc += x[i] * row_dot;
        }
        acc
    }
}

/// Builds the interleaved (SELL-style) mirror of a CSR layout: rows
/// grouped in blocks of [`crate::simd::SELL_ROWS`], each block padded to
/// its longest row and stored step-major. Padding entries are
/// `(col 0, value 0.0)` — their products contribute exact zeros that the
/// scalar twin replays identically.
fn build_sell(
    n: usize,
    row_ptr: &[usize],
    col_idx: &[u32],
    values: &[f64],
) -> (Vec<usize>, Vec<u32>, Vec<f64>) {
    const C: usize = crate::simd::SELL_ROWS;
    let nblocks = n.div_ceil(C);
    let mut sell_ptr = Vec::with_capacity(nblocks + 1);
    sell_ptr.push(0usize);
    let mut total = 0usize;
    for b in 0..nblocks {
        let steps = (b * C..n.min(b * C + C))
            .map(|r| row_ptr[r + 1] - row_ptr[r])
            .max()
            .unwrap_or(0);
        total += steps;
        sell_ptr.push(total);
    }
    let mut sell_cols = vec![0u32; total * C];
    let mut sell_vals = vec![0.0f64; total * C];
    for (b, &block_start) in sell_ptr[..nblocks].iter().enumerate() {
        let base = block_start * C;
        for (lane, r) in (b * C..n.min(b * C + C)).enumerate() {
            let (start, end) = (row_ptr[r], row_ptr[r + 1]);
            for (k, j) in (start..end).enumerate() {
                sell_cols[base + k * C + lane] = col_idx[j];
                sell_vals[base + k * C + lane] = values[j];
            }
        }
    }
    (sell_ptr, sell_cols, sell_vals)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> CsrMatrix {
        // [[2, -1, 0], [-1, 2, -1], [0, -1, 2]]
        CsrMatrix::from_triplets(
            3,
            &[
                (0, 0, 2.0),
                (0, 1, -1.0),
                (1, 0, -1.0),
                (1, 1, 2.0),
                (1, 2, -1.0),
                (2, 1, -1.0),
                (2, 2, 2.0),
            ],
        )
        .unwrap()
    }

    #[test]
    fn from_triplets_sorts_and_accumulates() {
        let m = CsrMatrix::from_triplets(2, &[(0, 1, 1.0), (0, 0, 5.0), (0, 1, 2.0)]).unwrap();
        assert_eq!(m.nnz(), 2);
        assert_eq!(m.get(0, 0), 5.0);
        assert_eq!(m.get(0, 1), 3.0);
        assert_eq!(m.get(1, 1), 0.0);
    }

    #[test]
    fn explicit_zeros_dropped() {
        let m = CsrMatrix::from_triplets(2, &[(0, 1, 1.0), (0, 1, -1.0)]).unwrap();
        assert_eq!(m.nnz(), 0);
    }

    #[test]
    fn out_of_range_rejected() {
        assert!(matches!(
            CsrMatrix::from_triplets(2, &[(2, 0, 1.0)]),
            Err(LinalgError::InvalidInput(_))
        ));
    }

    #[test]
    fn matvec_matches_dense() {
        let m = small();
        let x = [1.0, 2.0, 3.0];
        let mut y = [0.0; 3];
        m.matvec(&x, &mut y);
        assert_eq!(y, [0.0, 0.0, 4.0]);
        let mut y2 = [0.0; 3];
        m.to_dense().matvec(&x, &mut y2);
        assert_eq!(y, y2);
    }

    #[test]
    fn parallel_matvec_matches_serial() {
        // Build a matrix large enough to engage the parallel path.
        let n = 2000;
        let mut trips = Vec::new();
        for i in 0..n {
            trips.push((i, i, 2.0));
            if i + 1 < n {
                trips.push((i, i + 1, -1.0));
                trips.push((i + 1, i, -1.0));
            }
            // widen the band so nnz crosses the threshold
            for w in 2..40 {
                if i + w < n {
                    trips.push((i, i + w, 0.001 * w as f64));
                    trips.push((i + w, i, 0.001 * w as f64));
                }
            }
        }
        let m = CsrMatrix::from_triplets(n, &trips).unwrap();
        assert!(m.nnz() >= PARALLEL_WORK_THRESHOLD);
        let x: Vec<f64> = (0..n).map(|i| (i as f64 * 0.37).sin()).collect();
        let mut y1 = vec![0.0; n];
        m.matvec(&x, &mut y1);
        // The row kernel is shared, so every thread count is bit-identical
        // to serial (and trivially within the 1e-12 contract).
        for threads in [1usize, 2, 4, 8] {
            let mut y2 = vec![0.0; n];
            m.matvec_parallel(&x, &mut y2, threads);
            assert_eq!(y1, y2, "threads={threads}");
        }
    }

    #[test]
    fn matvec_simd_on_off_bit_identical_on_random_csr() {
        // Random CSR matrices across sizes that exercise partial final
        // interleaved blocks, empty rows, and mixed row lengths; the
        // full dispatch path (policy knob included) must produce the
        // same bits with SIMD on and off. xorshift keeps it seeded.
        let mut state = 0x9e3779b97f4a7c15u64;
        let mut rng = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        let before = crate::simd::policy();
        for n in [1usize, 5, 8, 27, 64, 331] {
            let mut trips = Vec::new();
            for i in 0..n {
                let deg = (rng() % 7) as usize; // 0..=6, some rows empty
                for _ in 0..deg {
                    let j = (rng() % n as u64) as usize;
                    let v = ((rng() % 2000) as f64 - 1000.0) / 997.0;
                    trips.push((i, j, v));
                }
            }
            let m = CsrMatrix::from_triplets(n, &trips).unwrap();
            let x: Vec<f64> = (0..n).map(|i| (i as f64 * 0.37).sin()).collect();
            let mut y_off = vec![0.0; n];
            crate::simd::set_policy(crate::SimdPolicy::Off);
            m.matvec(&x, &mut y_off);
            for policy in [crate::SimdPolicy::Strict, crate::SimdPolicy::Fast] {
                crate::simd::set_policy(policy);
                let mut y = vec![0.0; n];
                m.matvec(&x, &mut y);
                assert_eq!(y_off, y, "n={n} policy={policy:?}");
                let mut y_par = vec![0.0; n];
                m.matvec_parallel(&x, &mut y_par, 3);
                assert_eq!(y_off, y_par, "n={n} policy={policy:?} parallel");
            }
        }
        crate::simd::set_policy(before);
    }

    #[test]
    fn matvec_ticks_the_stats_counter() {
        let m = small();
        let before = crate::stats::sparse_matvec_count();
        let mut y = [0.0; 3];
        m.matvec(&[1.0, 0.0, 0.0], &mut y);
        m.matvec_parallel(&[1.0, 0.0, 0.0], &mut y, 2);
        assert!(crate::stats::sparse_matvec_count() >= before + 2);
    }

    #[test]
    fn gershgorin_bounds_largest_eigenvalue() {
        let m = small();
        // Path Laplacian-like matrix: largest eigenvalue 2 + sqrt(2) < 4.
        assert_eq!(m.gershgorin_upper_bound(), 4.0);
        let vals = crate::symeig::eigenvalues_symmetric(&m.to_dense()).unwrap();
        assert!(vals[2] <= m.gershgorin_upper_bound() + 1e-12);
    }

    #[test]
    fn symmetry_detection() {
        assert!(small().is_symmetric(0.0));
        let asym = CsrMatrix::from_triplets(2, &[(0, 1, 1.0)]).unwrap();
        assert!(!asym.is_symmetric(1e-12));
    }

    #[test]
    fn quadratic_form_matches_dense() {
        let m = small();
        let x = [1.0, -1.0, 0.5];
        assert!((m.quadratic_form(&x) - m.to_dense().quadratic_form(&x)).abs() < 1e-12);
    }

    #[test]
    fn trace_of_small() {
        assert_eq!(small().trace(), 6.0);
    }

    #[test]
    fn empty_matrix() {
        let m = CsrMatrix::from_triplets(0, &[]).unwrap();
        assert_eq!(m.dim(), 0);
        assert_eq!(m.nnz(), 0);
        let mut y: [f64; 0] = [];
        m.matvec(&[], &mut y);
    }
}
