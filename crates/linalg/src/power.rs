//! Power iteration for the dominant eigenvalue of a symmetric operator.
//!
//! The paper's abstract notes the spectral bound is "efficiently computable
//! by power iteration"; we use it (a) as a fallback estimate of `λ_max` when
//! no Gershgorin bound is available for the Lanczos shift, and (b) as an
//! independent cross-check in tests.

use crate::linop::LinOp;
use crate::vecops::{dot, normalize};
use crate::Result;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Outcome of [`power_iteration`].
#[derive(Debug, Clone)]
pub struct PowerResult {
    /// Estimated dominant eigenvalue (largest in magnitude; for PSD
    /// operators this is `λ_max`).
    pub value: f64,
    /// The matching unit eigenvector estimate.
    pub vector: Vec<f64>,
    /// Iterations performed.
    pub iterations: usize,
    /// Whether the eigenvalue estimate met the tolerance.
    pub converged: bool,
}

/// Runs power iteration on `op` from a random start vector.
///
/// Converges when successive Rayleigh quotients differ by at most
/// `tol * max(1, |λ|)`. For operators whose dominant eigenvalue is not
/// unique the vector may wander, but the Rayleigh quotient still converges
/// to the dominant eigenvalue, which is all callers need.
///
/// # Errors
/// Never errors for `dim >= 1`; returns a zero result for `dim == 0`.
pub fn power_iteration<A: LinOp + ?Sized>(
    op: &A,
    max_iters: usize,
    tol: f64,
    seed: u64,
) -> Result<PowerResult> {
    let n = op.dim();
    if n == 0 {
        return Ok(PowerResult {
            value: 0.0,
            vector: Vec::new(),
            iterations: 0,
            converged: true,
        });
    }
    let mut rng = StdRng::seed_from_u64(seed);
    let mut x: Vec<f64> = (0..n).map(|_| rng.gen::<f64>() * 2.0 - 1.0).collect();
    normalize(&mut x);
    let mut y = vec![0.0; n];
    let mut lambda = 0.0;
    let mut converged = false;
    let mut iterations = 0;
    for it in 1..=max_iters {
        iterations = it;
        op.apply(&x, &mut y);
        let new_lambda = dot(&x, &y);
        let scale = new_lambda.abs().max(1.0);
        let nrm = normalize(&mut y);
        if nrm == 0.0 {
            // x is in the null space; the dominant eigenvalue along this
            // direction is 0 — restart from a fresh random vector.
            for xi in x.iter_mut() {
                *xi = rng.gen::<f64>() * 2.0 - 1.0;
            }
            normalize(&mut x);
            continue;
        }
        std::mem::swap(&mut x, &mut y);
        if (new_lambda - lambda).abs() <= tol * scale && it > 1 {
            lambda = new_lambda;
            converged = true;
            break;
        }
        lambda = new_lambda;
    }
    Ok(PowerResult {
        value: lambda,
        vector: x,
        iterations,
        converged,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dense::DenseMatrix;

    #[test]
    fn finds_dominant_eigenvalue_of_diagonal() {
        let a = DenseMatrix::from_rows(&[&[1.0, 0.0, 0.0], &[0.0, 7.0, 0.0], &[0.0, 0.0, 3.0]]);
        let r = power_iteration(&a, 500, 1e-12, 42).unwrap();
        assert!(r.converged);
        assert!((r.value - 7.0).abs() < 1e-8);
        // Eigenvector should align with e_1.
        assert!(r.vector[1].abs() > 0.999);
    }

    #[test]
    fn agrees_with_dense_solver() {
        let a = DenseMatrix::from_rows(&[&[4.0, 1.0, -2.0], &[1.0, 2.0, 0.0], &[-2.0, 0.0, 3.0]]);
        let vals = crate::symeig::eigenvalues_symmetric(&a).unwrap();
        let dominant = vals
            .iter()
            .copied()
            .max_by(|x, y| x.abs().total_cmp(&y.abs()))
            .unwrap();
        let r = power_iteration(&a, 2000, 1e-13, 7).unwrap();
        assert!(
            (r.value - dominant).abs() < 1e-6,
            "{} vs {dominant}",
            r.value
        );
    }

    #[test]
    fn zero_matrix_converges_to_zero() {
        let a = DenseMatrix::zeros(3, 3);
        let r = power_iteration(&a, 50, 1e-10, 1).unwrap();
        assert!(r.value.abs() < 1e-12);
    }

    #[test]
    fn empty_operator() {
        let a = DenseMatrix::zeros(0, 0);
        let r = power_iteration(&a, 10, 1e-10, 1).unwrap();
        assert!(r.converged);
        assert_eq!(r.iterations, 0);
    }
}
