//! From-scratch dense and sparse symmetric linear algebra for `graphio`.
//!
//! The spectral I/O lower bound of Jain & Zaharia (SPAA 2020) needs exactly
//! one numerical primitive: the `h` smallest eigenvalues of a (sparse,
//! symmetric, positive semi-definite) graph Laplacian. This crate provides
//! that primitive twice over, plus the supporting machinery:
//!
//! * [`DenseMatrix`] with a Householder-tridiagonalization + implicit-shift
//!   QL symmetric eigensolver ([`symeig`]) — exact O(n³) reference path used
//!   for small/medium graphs and as the test oracle.
//! * [`CsrMatrix`] sparse symmetric storage with serial and
//!   crossbeam-parallel mat-vec, feeding a full-reorthogonalization,
//!   deflation-based Lanczos solver ([`lanczos`]) that recovers repeated
//!   eigenvalues with multiplicity — the O(h·n·nnz) path the paper's §6.5
//!   scalability claims rely on.
//! * Tridiagonal eigensolvers (implicit QL and Sturm-sequence bisection),
//!   power iteration, and random orthogonal matrices for the quadratic
//!   assignment (trace inequality) tests behind Theorem 4.
//! * A parallel execution layer: every O(n²)-or-worse kernel (sparse
//!   mat-vec, Householder panel updates, Lanczos re-orthogonalization) runs
//!   on scoped worker threads controlled by the [`threads`] knob, and the
//!   [`stats`] counters let callers prove work was (or wasn't) performed.
//!
//! Everything is implemented from first principles on `f64`; no BLAS/LAPACK.

pub mod csr;
pub mod dense;
pub mod error;
pub mod householder;
pub mod lanczos;
pub mod linop;
pub mod orthogonal;
pub mod power;
pub mod simd;
pub mod stats;
pub mod symeig;
pub mod threads;
pub mod tridiag;
pub mod vecops;

pub use csr::CsrMatrix;
pub use dense::DenseMatrix;
pub use error::LinalgError;
pub use lanczos::{
    extreme_ritz_values, smallest_eigenvalues, LanczosOptions, LanczosResult, RitzSweepOptions,
};
pub use linop::{LinOp, ShiftedNegated};
pub use orthogonal::random_orthogonal;
pub use power::{power_iteration, PowerResult};
pub use simd::SimdPolicy;
pub use symeig::{eigenvalues_symmetric, eigh};
pub use threads::{set_threads, Threads};
pub use tridiag::{tridiagonal_eigenvalues, tridiagonal_eigenvalues_bisect};

/// Result alias used throughout the crate.
pub type Result<T> = std::result::Result<T, LinalgError>;
