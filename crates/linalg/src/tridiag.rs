//! Eigensolvers for symmetric tridiagonal matrices.
//!
//! Two independent algorithms are provided:
//!
//! * [`tql_in_place`] / [`tridiagonal_eigenvalues`] — implicit-shift QL
//!   iteration (EISPACK `tql1`/`tql2` lineage), optionally rotating an
//!   orthogonal matrix to produce eigenvectors. Used by the dense solver and
//!   by Lanczos for Ritz values/vectors.
//! * [`tridiagonal_eigenvalues_bisect`] — Sturm-sequence bisection for the
//!   `k` smallest eigenvalues. Slower per eigenvalue but embarrassingly
//!   robust; kept both as a cross-check oracle in tests and as an ablation.
//!
//! Conventions: for a matrix of dimension `n`, `d` has length `n` and the
//! sub-diagonal `e` has length `n - 1`, with `e[i]` coupling rows `i` and
//! `i + 1`.

use crate::dense::DenseMatrix;
use crate::error::LinalgError;
use crate::vecops::pythag;
use crate::Result;

/// Maximum QL sweeps per eigenvalue before declaring failure.
const MAX_QL_ITERS: usize = 64;

/// Computes all eigenvalues (ascending) of the symmetric tridiagonal matrix
/// with diagonal `d` and sub-diagonal `e`.
///
/// # Errors
/// Returns [`LinalgError::DimensionMismatch`] if `e.len() + 1 != d.len()`
/// (except for the empty matrix) and [`LinalgError::NoConvergence`] if the
/// QL iteration stalls (never observed on real symmetric input).
pub fn tridiagonal_eigenvalues(d: &[f64], e: &[f64]) -> Result<Vec<f64>> {
    if d.is_empty() {
        return Ok(Vec::new());
    }
    if e.len() + 1 != d.len() {
        return Err(LinalgError::DimensionMismatch {
            expected: d.len() - 1,
            actual: e.len(),
        });
    }
    let mut dd = d.to_vec();
    ql_iterate(&mut dd, e, None)?;
    dd.sort_by(f64::total_cmp);
    Ok(dd)
}

/// QL iteration with optional eigenvector accumulation.
///
/// `d` (length `n`) and `e` (length `n`, with `e[0]` ignored — the
/// tridiagonalization convention of [`crate::householder`]) are overwritten:
/// on success `d` holds the eigenvalues **sorted ascending**. If `z` is
/// provided it must be `n × n` (typically the `Q` from `tridiagonalize`,
/// or the identity); its columns are rotated into eigenvectors and permuted
/// consistently with the sort.
///
/// # Errors
/// Returns [`LinalgError::NoConvergence`] if a sub-problem exceeds the sweep
/// budget.
pub fn tql_in_place(d: &mut [f64], e: &mut [f64], z: Option<&mut DenseMatrix>) -> Result<()> {
    let n = d.len();
    if n == 0 {
        return Ok(());
    }
    assert_eq!(
        e.len(),
        n,
        "tql_in_place: e must have length n (e[0] unused)"
    );
    // Shift to the internal convention: e[i] couples i and i+1.
    for i in 1..n {
        e[i - 1] = e[i];
    }
    e[n - 1] = 0.0;
    ql_iterate_shifted(d, e, z)
}

/// Core QL on the `e[i] couples (i, i+1)` convention, plus final sort.
fn ql_iterate(d: &mut [f64], e: &[f64], z: Option<&mut DenseMatrix>) -> Result<()> {
    let n = d.len();
    let mut work = vec![0.0; n];
    work[..n - 1].copy_from_slice(e);
    ql_iterate_shifted(d, &mut work, z)
}

fn ql_iterate_shifted(d: &mut [f64], e: &mut [f64], mut z: Option<&mut DenseMatrix>) -> Result<()> {
    let n = d.len();
    for l in 0..n {
        let mut iter = 0usize;
        loop {
            // Look for a negligible off-diagonal element to split the matrix.
            let mut m = l;
            while m + 1 < n {
                let dd = d[m].abs() + d[m + 1].abs();
                if e[m].abs() <= f64::EPSILON * dd {
                    break;
                }
                m += 1;
            }
            if m == l {
                break;
            }
            iter += 1;
            if iter > MAX_QL_ITERS {
                return Err(LinalgError::NoConvergence {
                    algorithm: "tridiagonal QL",
                    iterations: iter,
                });
            }
            // Form the implicit Wilkinson-like shift.
            let mut g = (d[l + 1] - d[l]) / (2.0 * e[l]);
            let mut r = pythag(g, 1.0);
            let sign_r = if g >= 0.0 { r.abs() } else { -r.abs() };
            g = d[m] - d[l] + e[l] / (g + sign_r);
            let (mut s, mut c, mut p) = (1.0, 1.0, 0.0);
            let mut underflow = false;
            for i in (l..m).rev() {
                let mut f = s * e[i];
                let b = c * e[i];
                r = pythag(f, g);
                e[i + 1] = r;
                if r == 0.0 {
                    // Recover from underflow by deflating.
                    d[i + 1] -= p;
                    e[m] = 0.0;
                    underflow = true;
                    break;
                }
                s = f / r;
                c = g / r;
                g = d[i + 1] - p;
                r = (d[i] - g) * s + 2.0 * c * b;
                p = s * r;
                d[i + 1] = g + p;
                g = c * r - b;
                if let Some(zm) = z.as_deref_mut() {
                    for k in 0..n {
                        f = zm[(k, i + 1)];
                        zm[(k, i + 1)] = s * zm[(k, i)] + c * f;
                        zm[(k, i)] = c * zm[(k, i)] - s * f;
                    }
                }
            }
            if underflow {
                continue;
            }
            d[l] -= p;
            e[l] = g;
            e[m] = 0.0;
        }
    }
    sort_ascending(d, z);
    Ok(())
}

/// Sorts eigenvalues ascending, permuting eigenvector columns alongside.
fn sort_ascending(d: &mut [f64], z: Option<&mut DenseMatrix>) {
    let n = d.len();
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by(|&a, &b| d[a].total_cmp(&d[b]));
    let sorted: Vec<f64> = order.iter().map(|&i| d[i]).collect();
    d.copy_from_slice(&sorted);
    if let Some(zm) = z {
        let orig = zm.clone();
        for (new_col, &old_col) in order.iter().enumerate() {
            for k in 0..n {
                zm[(k, new_col)] = orig[(k, old_col)];
            }
        }
    }
}

/// Number of eigenvalues of the tridiagonal matrix strictly below `x`,
/// computed with a Sturm sequence.
///
/// `d.len() == n`, `e.len() == n - 1` (`e[i]` couples `i` and `i+1`).
pub fn count_eigenvalues_below(d: &[f64], e: &[f64], x: f64) -> usize {
    let n = d.len();
    if n == 0 {
        return 0;
    }
    debug_assert_eq!(e.len() + 1, n);
    let tiny = f64::MIN_POSITIVE / f64::EPSILON;
    let mut count = 0usize;
    let mut q = d[0] - x;
    if q < 0.0 {
        count += 1;
    }
    for i in 1..n {
        let denom = if q == 0.0 { tiny } else { q };
        q = d[i] - x - e[i - 1] * e[i - 1] / denom;
        if q < 0.0 {
            count += 1;
        }
    }
    count
}

/// The `k` smallest eigenvalues (ascending) of the symmetric tridiagonal
/// matrix, by Sturm-sequence bisection. Robust against clustering and
/// returns repeated eigenvalues with their multiplicities.
///
/// # Errors
/// Returns [`LinalgError::TooManyEigenvaluesRequested`] if `k > n` and
/// [`LinalgError::DimensionMismatch`] on inconsistent input lengths.
pub fn tridiagonal_eigenvalues_bisect(d: &[f64], e: &[f64], k: usize) -> Result<Vec<f64>> {
    let n = d.len();
    if k > n {
        return Err(LinalgError::TooManyEigenvaluesRequested {
            requested: k,
            dimension: n,
        });
    }
    if n == 0 || k == 0 {
        return Ok(Vec::new());
    }
    if e.len() + 1 != n {
        return Err(LinalgError::DimensionMismatch {
            expected: n - 1,
            actual: e.len(),
        });
    }
    // Gershgorin bounds.
    let mut lo = f64::INFINITY;
    let mut hi = f64::NEG_INFINITY;
    for i in 0..n {
        let mut r = 0.0;
        if i > 0 {
            r += e[i - 1].abs();
        }
        if i + 1 < n {
            r += e[i].abs();
        }
        lo = lo.min(d[i] - r);
        hi = hi.max(d[i] + r);
    }
    let span = (hi - lo).max(f64::MIN_POSITIVE);
    let tol = f64::EPSILON * span.max(1.0) * 4.0;

    let mut out = Vec::with_capacity(k);
    for j in 0..k {
        // Find the (j+1)-th smallest eigenvalue: the infimum of x with
        // count_below(x) >= j+1.
        let mut a = lo;
        let mut b = hi + span * f64::EPSILON + tol;
        while b - a > tol {
            let mid = 0.5 * (a + b);
            if count_eigenvalues_below(d, e, mid) > j {
                b = mid;
            } else {
                a = mid;
            }
        }
        out.push(0.5 * (a + b));
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Unit-weight path graph Laplacian on `n` vertices as (d, e):
    /// eigenvalues are 2 - 2 cos(pi j / n), j = 0..n-1.
    fn path_laplacian(n: usize) -> (Vec<f64>, Vec<f64>) {
        if n == 1 {
            return (vec![0.0], vec![]);
        }
        let mut d = vec![2.0; n];
        d[0] = 1.0;
        d[n - 1] = 1.0;
        let e = vec![-1.0; n - 1];
        (d, e)
    }

    fn path_eigenvalues(n: usize) -> Vec<f64> {
        (0..n)
            .map(|j| 2.0 - 2.0 * (std::f64::consts::PI * j as f64 / n as f64).cos())
            .collect()
    }

    #[test]
    fn ql_matches_path_closed_form() {
        for n in [1usize, 2, 3, 5, 8, 17, 40] {
            let (d, e) = path_laplacian(n);
            let vals = tridiagonal_eigenvalues(&d, &e).unwrap();
            let expect = path_eigenvalues(n);
            for (v, x) in vals.iter().zip(expect.iter()) {
                assert!((v - x).abs() < 1e-10, "n={n}: {v} vs {x}");
            }
        }
    }

    #[test]
    fn bisect_matches_ql() {
        let (d, e) = path_laplacian(23);
        let all = tridiagonal_eigenvalues(&d, &e).unwrap();
        let k = 7;
        let some = tridiagonal_eigenvalues_bisect(&d, &e, k).unwrap();
        for i in 0..k {
            assert!((some[i] - all[i]).abs() < 1e-9, "{} vs {}", some[i], all[i]);
        }
    }

    #[test]
    fn bisect_recovers_multiplicities() {
        // Diagonal matrix diag(1, 1, 1, 5): eigenvalue 1 with multiplicity 3.
        let d = vec![1.0, 1.0, 1.0, 5.0];
        let e = vec![0.0, 0.0, 0.0];
        let vals = tridiagonal_eigenvalues_bisect(&d, &e, 4).unwrap();
        assert!((vals[0] - 1.0).abs() < 1e-10);
        assert!((vals[1] - 1.0).abs() < 1e-10);
        assert!((vals[2] - 1.0).abs() < 1e-10);
        assert!((vals[3] - 5.0).abs() < 1e-10);
    }

    #[test]
    fn sturm_count_is_monotone_and_exact() {
        let d = vec![0.0, 2.0, 2.0];
        let e = vec![0.0, 0.0];
        assert_eq!(count_eigenvalues_below(&d, &e, -0.5), 0);
        assert_eq!(count_eigenvalues_below(&d, &e, 0.5), 1);
        assert_eq!(count_eigenvalues_below(&d, &e, 3.0), 3);
    }

    #[test]
    fn eigenvectors_satisfy_t_v_eq_lambda_v() {
        let n = 6;
        let (d0, e0) = path_laplacian(n);
        let mut d = d0.clone();
        // tql_in_place expects the tridiagonalization convention (e[0] unused).
        let mut e = vec![0.0; n];
        e[1..n].copy_from_slice(&e0[..n - 1]);
        let mut z = DenseMatrix::identity(n);
        tql_in_place(&mut d, &mut e, Some(&mut z)).unwrap();
        // Check T v_i = lambda_i v_i for each column.
        for i in 0..n {
            for r in 0..n {
                let mut tv = d0[r] * z[(r, i)];
                if r > 0 {
                    tv += e0[r - 1] * z[(r - 1, i)];
                }
                if r + 1 < n {
                    tv += e0[r] * z[(r + 1, i)];
                }
                assert!(
                    (tv - d[i] * z[(r, i)]).abs() < 1e-9,
                    "residual too large at ({r},{i})"
                );
            }
        }
        // Ascending order.
        for i in 1..n {
            assert!(d[i] >= d[i - 1] - 1e-12);
        }
    }

    #[test]
    fn empty_and_single() {
        assert!(tridiagonal_eigenvalues(&[], &[]).unwrap().is_empty());
        let v = tridiagonal_eigenvalues(&[3.5], &[]).unwrap();
        assert_eq!(v, vec![3.5]);
        let b = tridiagonal_eigenvalues_bisect(&[3.5], &[], 1).unwrap();
        assert!((b[0] - 3.5).abs() < 1e-12);
    }

    #[test]
    fn dimension_errors() {
        assert!(matches!(
            tridiagonal_eigenvalues(&[1.0, 2.0], &[]),
            Err(LinalgError::DimensionMismatch { .. })
        ));
        assert!(matches!(
            tridiagonal_eigenvalues_bisect(&[1.0], &[], 2),
            Err(LinalgError::TooManyEigenvaluesRequested { .. })
        ));
    }
}
