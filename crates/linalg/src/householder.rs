//! Householder reduction of a symmetric matrix to tridiagonal form.
//!
//! This is a 0-indexed port of the classical EISPACK `tred2` algorithm
//! (as presented in *Numerical Recipes*). Combined with the implicit-shift
//! QL iteration in [`crate::tridiag`] it yields the dense O(n³) symmetric
//! eigensolver used as the exact reference path for spectral bounds.
//!
//! The two O(l²) panel phases of each reflector — the symmetric
//! matrix–vector product `p = A·u/h` and the rank-2 update
//! `A ← A − u·qᵀ − q·uᵀ` — run on scoped worker threads for large panels.
//! Both kernels compute every output element with the same in-order
//! reduction regardless of chunking, so results are bit-identical across
//! thread counts (and to the classical serial formulation).

use crate::dense::DenseMatrix;
use crate::threads::{even_ranges, triangle_ranges};

/// Panels with fewer rows than this run serially — two thread scopes per
/// reflector only pay off once the O(l²) phases dominate spawn cost.
const PARALLEL_PANEL_THRESHOLD: usize = 256;

/// Output of [`tridiagonalize_in_place`].
#[derive(Debug, Clone)]
pub struct Tridiagonal {
    /// Diagonal of the tridiagonal matrix `T` (length `n`).
    pub d: Vec<f64>,
    /// Sub-diagonal of `T`: `e[i]` couples rows `i-1` and `i`; `e[0] = 0`.
    pub e: Vec<f64>,
}

/// Reduces the symmetric matrix `a` to tridiagonal form in place.
///
/// If `accumulate_q` is `true`, on return `a` holds the orthogonal matrix
/// `Q` with `QᵀAQ = T`; the QL iteration can then rotate `Q`'s columns into
/// the eigenvectors of the original matrix. If `false`, the contents of `a`
/// are destroyed (only the spectral data is preserved), which roughly halves
/// the work — the right choice when only eigenvalues are needed for a bound.
///
/// The caller is responsible for `a` being square and symmetric; this is
/// checked by the public drivers in [`crate::symeig`].
///
/// Uses the process-global [`crate::threads`] knob for the panel kernels;
/// [`tridiagonalize_in_place_with_threads`] takes an explicit count.
pub fn tridiagonalize_in_place(a: &mut DenseMatrix, accumulate_q: bool) -> Tridiagonal {
    tridiagonalize_in_place_with_threads(a, accumulate_q, crate::threads::effective_threads())
}

/// [`tridiagonalize_in_place`] with an explicit worker-thread count.
pub fn tridiagonalize_in_place_with_threads(
    a: &mut DenseMatrix,
    accumulate_q: bool,
    threads: usize,
) -> Tridiagonal {
    let n = a.nrows();
    let mut d = vec![0.0; n];
    let mut e = vec![0.0; n];
    if n == 0 {
        return Tridiagonal { d, e };
    }
    // Scratch copy of the current reflector (row i of `a`), so the panel
    // kernels can borrow the matrix without aliasing it.
    let mut u = vec![0.0; n];

    for i in (1..n).rev() {
        let l = i - 1;
        let mut h = 0.0;
        if l > 0 {
            let mut scale = 0.0;
            for k in 0..=l {
                scale += a[(i, k)].abs();
            }
            if scale == 0.0 {
                // Row already tridiagonal at this step.
                e[i] = a[(i, l)];
            } else {
                for k in 0..=l {
                    a[(i, k)] /= scale;
                    h += a[(i, k)] * a[(i, k)];
                }
                let mut f = a[(i, l)];
                let g = if f >= 0.0 { -h.sqrt() } else { h.sqrt() };
                e[i] = scale * g;
                h -= f * g;
                a[(i, l)] = f - g;
                u[..=l].copy_from_slice(&a.row(i)[..=l]);
                // Panel phase 1: e[j] = (A u)[j] / h over the lower triangle.
                lower_sym_matvec(a, l, &u[..=l], &mut e[..=l], h, threads);
                if accumulate_q {
                    for j in 0..=l {
                        a[(j, i)] = a[(i, j)] / h;
                    }
                }
                f = crate::vecops::dot(&e[..=l], &u[..=l]);
                let hh = f / (h + h);
                for j in 0..=l {
                    e[j] -= hh * u[j];
                }
                // Panel phase 2: A[0..=l, 0..=l] -= u eᵀ + e uᵀ (lower part).
                rank2_update_lower(a, l, &u[..=l], &e[..=l], threads);
            }
        } else {
            e[i] = a[(i, l)];
        }
        d[i] = h;
    }
    d[0] = 0.0;
    e[0] = 0.0;

    if accumulate_q {
        // Accumulate the product of the Householder reflectors into `a`.
        for i in 0..n {
            if i > 0 && d[i] != 0.0 {
                for j in 0..i {
                    let mut g = 0.0;
                    for k in 0..i {
                        g += a[(i, k)] * a[(k, j)];
                    }
                    for k in 0..i {
                        let delta = g * a[(k, i)];
                        a[(k, j)] -= delta;
                    }
                }
            }
            d[i] = a[(i, i)];
            a[(i, i)] = 1.0;
            if i > 0 {
                for j in 0..i {
                    a[(j, i)] = 0.0;
                    a[(i, j)] = 0.0;
                }
            }
        }
    } else {
        for (i, di) in d.iter_mut().enumerate() {
            *di = a[(i, i)];
        }
    }

    Tridiagonal { d, e }
}

/// Fills `out[j] = (Σ_{k≤j} a[j][k]·u[k] + Σ_{j<k≤l} a[k][j]·u[k]) / h`
/// for `j ∈ 0..=l` — the symmetric mat-vec over the packed lower triangle.
///
/// Cache blocking: the classical formulation walks column `j` of the
/// lower triangle for the second sum — an `n`-strided sweep that goes
/// memory-bound around `n ≈ 1000`. Instead, each output segment first
/// takes its row dots (`k ≤ j`, unit stride), then accumulates the column
/// contributions row-wise: for `k` ascending, `out[j] += a[k][j]·u[k]`
/// over the whole segment at once — a unit-stride `axpy` on `a.row(k)`.
/// Per element the additions land in exactly the classical order (row dot
/// first, then `k` ascending), so the result is bit-identical for every
/// chunking; both phases run on the SIMD kernels, whose `Strict` shape is
/// likewise chunking-independent.
fn lower_sym_matvec(a: &DenseMatrix, l: usize, u: &[f64], out: &mut [f64], h: f64, threads: usize) {
    let route = crate::simd::route(l + 1);
    let kernel = |start: usize, out_chunk: &mut [f64]| {
        for (slot, g_out) in out_chunk.iter_mut().enumerate() {
            let j = start + slot;
            *g_out = crate::vecops::dot(&a.row(j)[..=j], &u[..=j]);
        }
        let hi = start + out_chunk.len();
        for (k, &u_k) in u.iter().enumerate().take(l + 1).skip(start + 1) {
            let seg_end = k.min(hi) - start;
            if seg_end == 0 {
                break;
            }
            let row_k = &a.row(k)[start..start + seg_end];
            crate::simd::axpy_routed(route, u_k, row_k, &mut out_chunk[..seg_end]);
        }
        for g_out in out_chunk.iter_mut() {
            *g_out /= h;
        }
    };
    if threads <= 1 || l < PARALLEL_PANEL_THRESHOLD {
        kernel(0, out);
        return;
    }
    std::thread::scope(|s| {
        let kernel = &kernel;
        let mut rest = out;
        for range in even_ranges(l + 1, threads) {
            let (chunk, tail) = rest.split_at_mut(range.len());
            rest = tail;
            s.spawn(move || kernel(range.start, chunk));
        }
    });
}

/// Applies the symmetric rank-2 update `a[j][k] -= u[j]·e[k] + e[j]·u[k]`
/// for `k ≤ j ≤ l` (lower triangle only, as the classical algorithm does).
/// Rows are distributed by triangle area so chunks carry equal work.
fn rank2_update_lower(a: &mut DenseMatrix, l: usize, u: &[f64], e: &[f64], threads: usize) {
    let cols = a.ncols();
    let rows = l + 1;
    let route = crate::simd::route(rows);
    let kernel = |start_row: usize, block: &mut [f64]| {
        for (r, row) in block.chunks_mut(cols).enumerate() {
            let j = start_row + r;
            let (uj, ej) = (u[j], e[j]);
            crate::simd::rank2_row_routed(route, &mut row[..=j], uj, ej, e, u);
        }
    };
    let data = &mut a.data_mut()[..rows * cols];
    if threads <= 1 || l < PARALLEL_PANEL_THRESHOLD {
        kernel(0, data);
        return;
    }
    std::thread::scope(|s| {
        let kernel = &kernel;
        let mut rest = data;
        for range in triangle_ranges(rows, threads) {
            let (block, tail) = rest.split_at_mut(range.len() * cols);
            rest = tail;
            s.spawn(move || kernel(range.start, block));
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    fn reconstruct_from_q_and_t(q: &DenseMatrix, t: &Tridiagonal) -> DenseMatrix {
        let n = q.nrows();
        let mut tm = DenseMatrix::zeros(n, n);
        for i in 0..n {
            tm[(i, i)] = t.d[i];
            if i > 0 {
                tm[(i, i - 1)] = t.e[i];
                tm[(i - 1, i)] = t.e[i];
            }
        }
        // A = Q T Qᵀ
        q.matmul(&tm).unwrap().matmul(&q.transpose()).unwrap()
    }

    #[test]
    fn already_tridiagonal_is_preserved() {
        // Path-graph Laplacian is already tridiagonal.
        let a = DenseMatrix::from_rows(&[&[1.0, -1.0, 0.0], &[-1.0, 2.0, -1.0], &[0.0, -1.0, 1.0]]);
        let mut work = a.clone();
        let t = tridiagonalize_in_place(&mut work, false);
        assert_eq!(t.d, vec![1.0, 2.0, 1.0]);
        assert_eq!(t.e[1].abs(), 1.0);
        assert_eq!(t.e[2].abs(), 1.0);
    }

    #[test]
    fn q_t_qt_reconstructs_original() {
        let a = DenseMatrix::from_rows(&[
            &[4.0, 1.0, -2.0, 2.0],
            &[1.0, 2.0, 0.0, 1.0],
            &[-2.0, 0.0, 3.0, -2.0],
            &[2.0, 1.0, -2.0, -1.0],
        ]);
        let mut q = a.clone();
        let t = tridiagonalize_in_place(&mut q, true);
        // Q must be orthogonal.
        let qtq = q.transpose().matmul(&q).unwrap();
        assert!(qtq.max_abs_diff(&DenseMatrix::identity(4)) < 1e-12);
        let rec = reconstruct_from_q_and_t(&q, &t);
        assert!(rec.max_abs_diff(&a) < 1e-12);
    }

    #[test]
    fn trace_is_preserved() {
        let a = DenseMatrix::from_rows(&[&[2.0, -1.0, 0.5], &[-1.0, 3.0, -1.0], &[0.5, -1.0, 4.0]]);
        let mut work = a.clone();
        let t = tridiagonalize_in_place(&mut work, false);
        let sum: f64 = t.d.iter().sum();
        assert!((sum - a.trace()).abs() < 1e-12);
    }

    #[test]
    fn small_sizes() {
        let mut a0 = DenseMatrix::zeros(0, 0);
        let t0 = tridiagonalize_in_place(&mut a0, false);
        assert!(t0.d.is_empty());

        let mut a1 = DenseMatrix::from_rows(&[&[7.0]]);
        let t1 = tridiagonalize_in_place(&mut a1, false);
        assert_eq!(t1.d, vec![7.0]);

        let mut a2 = DenseMatrix::from_rows(&[&[1.0, 2.0], &[2.0, 5.0]]);
        let t2 = tridiagonalize_in_place(&mut a2, false);
        assert_eq!(t2.d, vec![1.0, 5.0]);
        assert_eq!(t2.e[1], 2.0);
    }
}
