//! Row-major dense matrices.
//!
//! Dense storage is used for the exact O(n³) eigensolver path (graphs up to
//! a few thousand vertices) and for the small matrices appearing in tests of
//! the quadratic-assignment trace inequality behind Theorem 4.

use crate::error::LinalgError;
use crate::Result;
use std::ops::{Index, IndexMut};

/// A row-major dense `rows × cols` matrix of `f64`.
#[derive(Debug, Clone, PartialEq)]
pub struct DenseMatrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl DenseMatrix {
    /// Creates a zero matrix of the given shape.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        DenseMatrix {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Creates the `n × n` identity matrix.
    pub fn identity(n: usize) -> Self {
        let mut m = Self::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = 1.0;
        }
        m
    }

    /// Builds a matrix from a row-major data vector.
    ///
    /// # Errors
    /// Returns [`LinalgError::DimensionMismatch`] if `data.len() != rows*cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f64>) -> Result<Self> {
        if data.len() != rows * cols {
            return Err(LinalgError::DimensionMismatch {
                expected: rows * cols,
                actual: data.len(),
            });
        }
        Ok(DenseMatrix { rows, cols, data })
    }

    /// Builds a matrix from nested row slices (convenient in tests).
    ///
    /// # Panics
    /// Panics if rows have inconsistent lengths.
    pub fn from_rows(rows: &[&[f64]]) -> Self {
        let r = rows.len();
        let c = rows.first().map_or(0, |row| row.len());
        let mut data = Vec::with_capacity(r * c);
        for row in rows {
            assert_eq!(row.len(), c, "from_rows: ragged rows");
            data.extend_from_slice(row);
        }
        DenseMatrix {
            rows: r,
            cols: c,
            data,
        }
    }

    /// Number of rows.
    pub fn nrows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn ncols(&self) -> usize {
        self.cols
    }

    /// Returns `true` if the matrix is square.
    pub fn is_square(&self) -> bool {
        self.rows == self.cols
    }

    /// Immutable view of the underlying row-major data.
    pub fn data(&self) -> &[f64] {
        &self.data
    }

    /// Mutable view of the underlying row-major data.
    pub fn data_mut(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// Immutable view of row `i`.
    pub fn row(&self, i: usize) -> &[f64] {
        &self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Mutable view of row `i`.
    pub fn row_mut(&mut self, i: usize) -> &mut [f64] {
        &mut self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Matrix–vector product `y = A x`.
    ///
    /// # Panics
    /// Panics if dimensions are incompatible.
    pub fn matvec(&self, x: &[f64], y: &mut [f64]) {
        assert_eq!(x.len(), self.cols, "matvec: x length mismatch");
        assert_eq!(y.len(), self.rows, "matvec: y length mismatch");
        for (i, yi) in y.iter_mut().enumerate() {
            *yi = crate::vecops::dot(self.row(i), x);
        }
    }

    /// Matrix product `A · B`.
    ///
    /// # Errors
    /// Returns [`LinalgError::DimensionMismatch`] on incompatible shapes.
    pub fn matmul(&self, other: &DenseMatrix) -> Result<DenseMatrix> {
        if self.cols != other.rows {
            return Err(LinalgError::DimensionMismatch {
                expected: self.cols,
                actual: other.rows,
            });
        }
        let mut out = DenseMatrix::zeros(self.rows, other.cols);
        // i-k-j loop order keeps the inner loop contiguous in both B and C.
        for i in 0..self.rows {
            for k in 0..self.cols {
                let aik = self[(i, k)];
                if aik == 0.0 {
                    continue;
                }
                let brow = other.row(k);
                let crow = out.row_mut(i);
                for (cij, bkj) in crow.iter_mut().zip(brow.iter()) {
                    *cij += aik * bkj;
                }
            }
        }
        Ok(out)
    }

    /// Transpose.
    pub fn transpose(&self) -> DenseMatrix {
        let mut out = DenseMatrix::zeros(self.cols, self.rows);
        for i in 0..self.rows {
            for j in 0..self.cols {
                out[(j, i)] = self[(i, j)];
            }
        }
        out
    }

    /// Sum of diagonal entries.
    ///
    /// # Panics
    /// Panics if the matrix is not square.
    pub fn trace(&self) -> f64 {
        assert!(self.is_square(), "trace of a non-square matrix");
        (0..self.rows).map(|i| self[(i, i)]).sum()
    }

    /// Checks symmetry up to absolute tolerance `tol`.
    pub fn is_symmetric(&self, tol: f64) -> bool {
        self.symmetry_violation().is_none_or_below(tol)
    }

    /// Returns the first `(i, j, |a_ij − a_ji|)` violating symmetry most, if any.
    fn symmetry_violation(&self) -> SymmetryCheck {
        if !self.is_square() {
            return SymmetryCheck::NotSquare;
        }
        let mut worst = 0.0;
        let mut at = (0, 0);
        for i in 0..self.rows {
            for j in (i + 1)..self.cols {
                let d = (self[(i, j)] - self[(j, i)]).abs();
                if d > worst {
                    worst = d;
                    at = (i, j);
                }
            }
        }
        SymmetryCheck::Worst {
            at,
            violation: worst,
        }
    }

    /// Validates that the matrix is square and symmetric.
    ///
    /// # Errors
    /// Returns [`LinalgError::NotSquare`] or [`LinalgError::NotSymmetric`].
    pub fn require_symmetric(&self, tol: f64) -> Result<()> {
        match self.symmetry_violation() {
            SymmetryCheck::NotSquare => Err(LinalgError::NotSquare {
                rows: self.rows,
                cols: self.cols,
            }),
            SymmetryCheck::Worst { at, violation } if violation > tol => {
                Err(LinalgError::NotSymmetric {
                    row: at.0,
                    col: at.1,
                })
            }
            _ => Ok(()),
        }
    }

    /// Frobenius norm.
    pub fn frobenius_norm(&self) -> f64 {
        self.data.iter().map(|v| v * v).sum::<f64>().sqrt()
    }

    /// Elementwise maximum absolute difference to another matrix.
    ///
    /// # Panics
    /// Panics if shapes differ.
    pub fn max_abs_diff(&self, other: &DenseMatrix) -> f64 {
        assert_eq!(self.rows, other.rows, "max_abs_diff: row mismatch");
        assert_eq!(self.cols, other.cols, "max_abs_diff: col mismatch");
        crate::vecops::max_abs_diff(&self.data, &other.data)
    }

    /// Quadratic form `xᵀ A x`.
    ///
    /// # Panics
    /// Panics if `x.len() != n` for a square `n × n` matrix.
    pub fn quadratic_form(&self, x: &[f64]) -> f64 {
        assert!(self.is_square(), "quadratic_form of a non-square matrix");
        assert_eq!(x.len(), self.rows, "quadratic_form: x length mismatch");
        let mut acc = 0.0;
        for i in 0..self.rows {
            acc += x[i] * crate::vecops::dot(self.row(i), x);
        }
        acc
    }
}

enum SymmetryCheck {
    NotSquare,
    Worst { at: (usize, usize), violation: f64 },
}

impl SymmetryCheck {
    fn is_none_or_below(&self, tol: f64) -> bool {
        match self {
            SymmetryCheck::NotSquare => false,
            SymmetryCheck::Worst { violation, .. } => *violation <= tol,
        }
    }
}

impl Index<(usize, usize)> for DenseMatrix {
    type Output = f64;

    fn index(&self, (i, j): (usize, usize)) -> &f64 {
        &self.data[i * self.cols + j]
    }
}

impl IndexMut<(usize, usize)> for DenseMatrix {
    fn index_mut(&mut self, (i, j): (usize, usize)) -> &mut f64 {
        &mut self.data[i * self.cols + j]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_and_identity() {
        let z = DenseMatrix::zeros(2, 3);
        assert_eq!(z.nrows(), 2);
        assert_eq!(z.ncols(), 3);
        assert!(z.data().iter().all(|&v| v == 0.0));
        let i = DenseMatrix::identity(3);
        assert_eq!(i.trace(), 3.0);
        assert_eq!(i[(0, 1)], 0.0);
        assert_eq!(i[(2, 2)], 1.0);
    }

    #[test]
    fn from_vec_validates_length() {
        assert!(DenseMatrix::from_vec(2, 2, vec![1.0; 4]).is_ok());
        assert_eq!(
            DenseMatrix::from_vec(2, 2, vec![1.0; 3]).unwrap_err(),
            LinalgError::DimensionMismatch {
                expected: 4,
                actual: 3
            }
        );
    }

    #[test]
    fn matvec_matches_by_hand() {
        let a = DenseMatrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let mut y = vec![0.0; 2];
        a.matvec(&[1.0, 1.0], &mut y);
        assert_eq!(y, vec![3.0, 7.0]);
    }

    #[test]
    fn matmul_matches_by_hand() {
        let a = DenseMatrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let b = DenseMatrix::from_rows(&[&[0.0, 1.0], &[1.0, 0.0]]);
        let c = a.matmul(&b).unwrap();
        assert_eq!(c, DenseMatrix::from_rows(&[&[2.0, 1.0], &[4.0, 3.0]]));
    }

    #[test]
    fn matmul_dimension_error() {
        let a = DenseMatrix::zeros(2, 3);
        let b = DenseMatrix::zeros(2, 3);
        assert!(matches!(
            a.matmul(&b),
            Err(LinalgError::DimensionMismatch { .. })
        ));
    }

    #[test]
    fn transpose_roundtrip() {
        let a = DenseMatrix::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]]);
        let t = a.transpose();
        assert_eq!(t.nrows(), 3);
        assert_eq!(t[(2, 1)], 6.0);
        assert_eq!(t.transpose(), a);
    }

    #[test]
    fn symmetry_checks() {
        let s = DenseMatrix::from_rows(&[&[2.0, -1.0], &[-1.0, 2.0]]);
        assert!(s.is_symmetric(0.0));
        s.require_symmetric(0.0).unwrap();
        let a = DenseMatrix::from_rows(&[&[0.0, 1.0], &[0.0, 0.0]]);
        assert!(!a.is_symmetric(1e-12));
        assert_eq!(
            a.require_symmetric(1e-12).unwrap_err(),
            LinalgError::NotSymmetric { row: 0, col: 1 }
        );
        let r = DenseMatrix::zeros(2, 3);
        assert!(matches!(
            r.require_symmetric(0.0),
            Err(LinalgError::NotSquare { rows: 2, cols: 3 })
        ));
    }

    #[test]
    fn quadratic_form_matches_laplacian_cut() {
        // Path graph 0-1-2 Laplacian; x = indicator of {0}: xᵀLx = cut = 1.
        let l = DenseMatrix::from_rows(&[&[1.0, -1.0, 0.0], &[-1.0, 2.0, -1.0], &[0.0, -1.0, 1.0]]);
        assert_eq!(l.quadratic_form(&[1.0, 0.0, 0.0]), 1.0);
        assert_eq!(l.quadratic_form(&[1.0, 1.0, 0.0]), 1.0);
        assert_eq!(l.quadratic_form(&[1.0, 1.0, 1.0]), 0.0);
    }

    #[test]
    fn frobenius_norm_value() {
        let a = DenseMatrix::from_rows(&[&[3.0, 0.0], &[0.0, 4.0]]);
        assert_eq!(a.frobenius_norm(), 5.0);
    }
}
