//! Dense symmetric eigensolver: Householder tridiagonalization followed by
//! implicit-shift QL. This is the exact O(n³) reference path for the
//! spectral I/O bound and the oracle against which Lanczos is tested.

use crate::dense::DenseMatrix;
use crate::householder::tridiagonalize_in_place;
use crate::tridiag::tql_in_place;
use crate::Result;

/// Relative symmetry tolerance applied before factorizing.
const SYMMETRY_TOL: f64 = 1e-9;

fn symmetry_scale(a: &DenseMatrix) -> f64 {
    1.0 + a.data().iter().fold(0.0f64, |m, v| m.max(v.abs()))
}

/// All eigenvalues of a symmetric matrix, sorted ascending.
///
/// # Errors
/// Returns an error if `a` is not square/symmetric or the QL iteration
/// fails to converge.
pub fn eigenvalues_symmetric(a: &DenseMatrix) -> Result<Vec<f64>> {
    let _span = graphio_obs::span!("dense_eig");
    a.require_symmetric(SYMMETRY_TOL * symmetry_scale(a))?;
    crate::stats::record_dense_eigensolve();
    let mut work = a.clone();
    let mut t = tridiagonalize_in_place(&mut work, false);
    tql_in_place(&mut t.d, &mut t.e, None)?;
    Ok(t.d)
}

/// Full symmetric eigendecomposition `A = V diag(λ) Vᵀ`.
///
/// Returns eigenvalues ascending and the orthogonal matrix `V` whose
/// *columns* are the matching eigenvectors.
///
/// # Errors
/// Same failure modes as [`eigenvalues_symmetric`].
pub fn eigh(a: &DenseMatrix) -> Result<(Vec<f64>, DenseMatrix)> {
    let _span = graphio_obs::span!("dense_eig");
    a.require_symmetric(SYMMETRY_TOL * symmetry_scale(a))?;
    crate::stats::record_dense_eigensolve();
    let mut q = a.clone();
    let mut t = tridiagonalize_in_place(&mut q, true);
    tql_in_place(&mut t.d, &mut t.e, Some(&mut q))?;
    Ok((t.d, q))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn complete_graph_laplacian(n: usize) -> DenseMatrix {
        let mut l = DenseMatrix::zeros(n, n);
        for i in 0..n {
            for j in 0..n {
                l[(i, j)] = if i == j { (n - 1) as f64 } else { -1.0 };
            }
        }
        l
    }

    fn cycle_graph_laplacian(n: usize) -> DenseMatrix {
        let mut l = DenseMatrix::zeros(n, n);
        for i in 0..n {
            l[(i, i)] = 2.0;
            l[(i, (i + 1) % n)] = -1.0;
            l[((i + 1) % n, i)] = -1.0;
        }
        l
    }

    #[test]
    fn complete_graph_spectrum() {
        // K_n Laplacian: eigenvalue 0 once, n with multiplicity n-1.
        for n in [2usize, 3, 5, 9] {
            let vals = eigenvalues_symmetric(&complete_graph_laplacian(n)).unwrap();
            assert!(vals[0].abs() < 1e-10);
            for v in &vals[1..] {
                assert!((v - n as f64).abs() < 1e-9, "n={n}: {v}");
            }
        }
    }

    #[test]
    fn cycle_graph_spectrum() {
        // C_n: 2 - 2 cos(2 pi j / n), j = 0..n-1.
        let n = 12;
        let vals = eigenvalues_symmetric(&cycle_graph_laplacian(n)).unwrap();
        let mut expect: Vec<f64> = (0..n)
            .map(|j| 2.0 - 2.0 * (2.0 * std::f64::consts::PI * j as f64 / n as f64).cos())
            .collect();
        expect.sort_by(f64::total_cmp);
        for (v, x) in vals.iter().zip(expect.iter()) {
            assert!((v - x).abs() < 1e-9);
        }
    }

    #[test]
    fn eigh_reconstructs_matrix() {
        let a = DenseMatrix::from_rows(&[
            &[4.0, 1.0, -2.0, 2.0],
            &[1.0, 2.0, 0.0, 1.0],
            &[-2.0, 0.0, 3.0, -2.0],
            &[2.0, 1.0, -2.0, -1.0],
        ]);
        let (vals, v) = eigh(&a).unwrap();
        // V diag(vals) Vᵀ == A
        let n = a.nrows();
        let mut lam = DenseMatrix::zeros(n, n);
        for i in 0..n {
            lam[(i, i)] = vals[i];
        }
        let rec = v.matmul(&lam).unwrap().matmul(&v.transpose()).unwrap();
        assert!(rec.max_abs_diff(&a) < 1e-10);
        // V orthogonal.
        let vtv = v.transpose().matmul(&v).unwrap();
        assert!(vtv.max_abs_diff(&DenseMatrix::identity(n)) < 1e-10);
        // Ascending.
        for i in 1..n {
            assert!(vals[i] >= vals[i - 1]);
        }
    }

    #[test]
    fn eigenvalue_sum_equals_trace() {
        let a = DenseMatrix::from_rows(&[&[1.0, 0.5, 0.0], &[0.5, -2.0, 0.25], &[0.0, 0.25, 3.0]]);
        let vals = eigenvalues_symmetric(&a).unwrap();
        let sum: f64 = vals.iter().sum();
        assert!((sum - a.trace()).abs() < 1e-10);
    }

    #[test]
    fn rejects_asymmetric() {
        let a = DenseMatrix::from_rows(&[&[1.0, 2.0], &[0.0, 1.0]]);
        assert!(eigenvalues_symmetric(&a).is_err());
        assert!(eigh(&a).is_err());
    }

    #[test]
    fn handles_diagonal_and_zero_matrices() {
        let mut d = DenseMatrix::zeros(4, 4);
        for i in 0..4 {
            d[(i, i)] = (4 - i) as f64;
        }
        let vals = eigenvalues_symmetric(&d).unwrap();
        assert_eq!(vals, vec![1.0, 2.0, 3.0, 4.0]);
        let z = DenseMatrix::zeros(3, 3);
        let vals = eigenvalues_symmetric(&z).unwrap();
        assert_eq!(vals, vec![0.0; 3]);
    }
}
