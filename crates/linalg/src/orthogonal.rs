//! Random orthogonal matrices.
//!
//! Theorem 4's proof relaxes the topological-order constraint to orthogonal
//! matrices and invokes the Finke–Burkard–Rendl trace inequality; the test
//! suite verifies that inequality empirically on random orthogonal matrices
//! generated here (Gram–Schmidt on a random Gaussian-ish matrix).

use crate::dense::DenseMatrix;
use crate::vecops::{dot, normalize};
use rand::Rng;

/// Generates a random `n × n` orthogonal matrix by modified Gram–Schmidt
/// with re-orthogonalization on random columns.
///
/// The distribution is not exactly Haar (the entries are uniform rather
/// than Gaussian) but is more than adequate for inequality testing.
pub fn random_orthogonal<R: Rng>(n: usize, rng: &mut R) -> DenseMatrix {
    let mut cols: Vec<Vec<f64>> = Vec::with_capacity(n);
    while cols.len() < n {
        let mut v: Vec<f64> = (0..n).map(|_| rng.gen::<f64>() * 2.0 - 1.0).collect();
        // Two Gram–Schmidt passes keep orthogonality near machine precision.
        for _ in 0..2 {
            for q in &cols {
                let c = dot(&v, q);
                for (vi, qi) in v.iter_mut().zip(q.iter()) {
                    *vi -= c * qi;
                }
            }
        }
        if normalize(&mut v) > 1e-8 {
            cols.push(v);
        }
        // Degenerate draws are simply retried.
    }
    let mut m = DenseMatrix::zeros(n, n);
    for (j, col) in cols.iter().enumerate() {
        for (i, &value) in col.iter().enumerate() {
            m[(i, j)] = value;
        }
    }
    m
}

/// Builds the permutation matrix `P` with `P[perm[i], i] = 1`, i.e. the
/// orthogonal matrix mapping basis vector `e_i` to `e_{perm[i]}`.
///
/// Under the paper's convention (`X_{ij} = 1` iff vertex `j` is evaluated at
/// time-step `i`), an evaluation order `order` (vertex evaluated at each
/// step) corresponds to `permutation_matrix(order)`.
///
/// # Panics
/// Panics if `perm` is not a permutation of `0..n`.
pub fn permutation_matrix(perm: &[usize]) -> DenseMatrix {
    let n = perm.len();
    let mut seen = vec![false; n];
    for &p in perm {
        assert!(p < n && !seen[p], "permutation_matrix: not a permutation");
        seen[p] = true;
    }
    let mut m = DenseMatrix::zeros(n, n);
    for (i, &p) in perm.iter().enumerate() {
        m[(p, i)] = 1.0;
    }
    m
}

/// Checks `QᵀQ = I` up to `tol`.
pub fn is_orthogonal(q: &DenseMatrix, tol: f64) -> bool {
    if !q.is_square() {
        return false;
    }
    let qtq = q
        .transpose()
        .matmul(q)
        .expect("square matrix product cannot fail");
    qtq.max_abs_diff(&DenseMatrix::identity(q.nrows())) <= tol
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn random_orthogonal_is_orthogonal() {
        let mut rng = StdRng::seed_from_u64(3);
        for n in [1usize, 2, 5, 16] {
            let q = random_orthogonal(n, &mut rng);
            assert!(is_orthogonal(&q, 1e-10), "n={n}");
        }
    }

    #[test]
    fn permutation_matrix_is_orthogonal_and_permutes() {
        let p = permutation_matrix(&[2, 0, 1]);
        assert!(is_orthogonal(&p, 0.0));
        // Column 0 should be e_2.
        assert_eq!(p[(2, 0)], 1.0);
        assert_eq!(p[(0, 0)], 0.0);
    }

    #[test]
    #[should_panic(expected = "not a permutation")]
    fn permutation_matrix_rejects_duplicates() {
        permutation_matrix(&[0, 0, 1]);
    }

    #[test]
    fn non_square_is_not_orthogonal() {
        assert!(!is_orthogonal(&DenseMatrix::zeros(2, 3), 1e-12));
    }
}
