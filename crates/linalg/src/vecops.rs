//! Dense vector kernels used by the iterative eigensolvers.
//!
//! These are deliberately simple, allocation-free loops over slices; LLVM
//! auto-vectorizes them well in release builds, which is all the Lanczos
//! inner loop needs.

/// Dot product `xᵀy`.
///
/// # Panics
/// Panics if the slices have different lengths.
pub fn dot(x: &[f64], y: &[f64]) -> f64 {
    assert_eq!(x.len(), y.len(), "dot: length mismatch");
    let mut acc = 0.0;
    for (a, b) in x.iter().zip(y.iter()) {
        acc += a * b;
    }
    acc
}

/// Euclidean norm `‖x‖₂`.
pub fn norm2(x: &[f64]) -> f64 {
    dot(x, x).sqrt()
}

/// `y ← y + alpha * x`.
///
/// # Panics
/// Panics if the slices have different lengths.
pub fn axpy(alpha: f64, x: &[f64], y: &mut [f64]) {
    assert_eq!(x.len(), y.len(), "axpy: length mismatch");
    for (yi, xi) in y.iter_mut().zip(x.iter()) {
        *yi += alpha * xi;
    }
}

/// `x ← alpha * x`.
pub fn scal(alpha: f64, x: &mut [f64]) {
    for xi in x.iter_mut() {
        *xi *= alpha;
    }
}

/// Normalizes `x` in place and returns its original norm.
///
/// If the norm is zero the vector is left untouched and `0.0` is returned.
pub fn normalize(x: &mut [f64]) -> f64 {
    let n = norm2(x);
    if n > 0.0 {
        scal(1.0 / n, x);
    }
    n
}

/// Maximum absolute difference between two vectors (`‖x − y‖∞`).
///
/// # Panics
/// Panics if the slices have different lengths.
pub fn max_abs_diff(x: &[f64], y: &[f64]) -> f64 {
    assert_eq!(x.len(), y.len(), "max_abs_diff: length mismatch");
    x.iter()
        .zip(y.iter())
        .map(|(a, b)| (a - b).abs())
        .fold(0.0, f64::max)
}

/// Removes from `v` its components along each (assumed orthonormal) vector
/// in `basis`, i.e. classical Gram–Schmidt re-orthogonalization.
pub fn orthogonalize_against(v: &mut [f64], basis: &[Vec<f64>]) {
    for q in basis {
        let c = dot(v, q);
        axpy(-c, q, v);
    }
}

/// Numerically robust `hypot` specialized to the QL iteration's needs:
/// `sqrt(a² + b²)` without overflow for the magnitudes seen here.
pub fn pythag(a: f64, b: f64) -> f64 {
    let (a, b) = (a.abs(), b.abs());
    if a > b {
        let r = b / a;
        a * (1.0 + r * r).sqrt()
    } else if b > 0.0 {
        let r = a / b;
        b * (1.0 + r * r).sqrt()
    } else {
        0.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dot_and_norm_basics() {
        let x = [3.0, 4.0];
        assert_eq!(dot(&x, &x), 25.0);
        assert_eq!(norm2(&x), 5.0);
        assert_eq!(dot(&[], &[]), 0.0);
    }

    #[test]
    fn axpy_accumulates() {
        let x = [1.0, 2.0, 3.0];
        let mut y = [10.0, 20.0, 30.0];
        axpy(2.0, &x, &mut y);
        assert_eq!(y, [12.0, 24.0, 36.0]);
    }

    #[test]
    fn scal_scales() {
        let mut x = [1.0, -2.0];
        scal(-3.0, &mut x);
        assert_eq!(x, [-3.0, 6.0]);
    }

    #[test]
    fn normalize_unit_norm() {
        let mut x = [3.0, 4.0];
        let n = normalize(&mut x);
        assert_eq!(n, 5.0);
        assert!((norm2(&x) - 1.0).abs() < 1e-15);
    }

    #[test]
    fn normalize_zero_vector_is_noop() {
        let mut x = [0.0, 0.0];
        assert_eq!(normalize(&mut x), 0.0);
        assert_eq!(x, [0.0, 0.0]);
    }

    #[test]
    fn orthogonalize_removes_components() {
        let q1 = vec![1.0, 0.0, 0.0];
        let q2 = vec![0.0, 1.0, 0.0];
        let mut v = vec![3.0, -2.0, 7.0];
        orthogonalize_against(&mut v, &[q1.clone(), q2.clone()]);
        assert!(dot(&v, &q1).abs() < 1e-15);
        assert!(dot(&v, &q2).abs() < 1e-15);
        assert!((v[2] - 7.0).abs() < 1e-15);
    }

    #[test]
    fn pythag_matches_hypot() {
        for &(a, b) in &[(3.0, 4.0), (0.0, 0.0), (-5.0, 12.0), (1e-8, 1e-8)] {
            assert!((pythag(a, b) - f64::hypot(a, b)).abs() < 1e-12 * (1.0 + f64::hypot(a, b)));
        }
    }

    #[test]
    fn max_abs_diff_finds_max() {
        assert_eq!(max_abs_diff(&[1.0, 2.0], &[1.5, 0.0]), 2.0);
        assert_eq!(max_abs_diff(&[], &[]), 0.0);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn dot_panics_on_mismatch() {
        dot(&[1.0], &[1.0, 2.0]);
    }
}
