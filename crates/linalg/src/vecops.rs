//! Dense vector kernels used by the iterative eigensolvers.
//!
//! These are allocation-free loops over slices, runtime-dispatched to the
//! AVX2 bodies in [`crate::simd`] when the CPU and the process-global
//! [`crate::simd::SimdPolicy`] allow it. Under the default `Strict`
//! policy every kernel is bit-identical whether the vector or the scalar
//! body ran — reductions share one canonical striped-lane shape — so the
//! crate's determinism contract (same bits at every thread count) extends
//! to "same bits with SIMD on or off".

/// Dot product `xᵀy`, reduced with the canonical 4-lane striped tree (see
/// [`crate::simd::dot_scalar`] for the reference spelling).
///
/// # Panics
/// Panics if the slices have different lengths.
pub fn dot(x: &[f64], y: &[f64]) -> f64 {
    assert_eq!(x.len(), y.len(), "dot: length mismatch");
    crate::simd::dot(x, y)
}

/// Euclidean norm `‖x‖₂`.
pub fn norm2(x: &[f64]) -> f64 {
    dot(x, x).sqrt()
}

/// `y ← y + alpha * x`.
///
/// # Panics
/// Panics if the slices have different lengths.
pub fn axpy(alpha: f64, x: &[f64], y: &mut [f64]) {
    assert_eq!(x.len(), y.len(), "axpy: length mismatch");
    crate::simd::axpy(alpha, x, y);
}

/// Scaled add `y ← alpha * x + beta * y` (element-wise, so bit-identical
/// under every SIMD policy).
///
/// # Panics
/// Panics if the slices have different lengths.
pub fn axpby(alpha: f64, x: &[f64], beta: f64, y: &mut [f64]) {
    assert_eq!(x.len(), y.len(), "axpby: length mismatch");
    crate::simd::axpby(alpha, x, beta, y);
}

/// `x ← alpha * x`.
pub fn scal(alpha: f64, x: &mut [f64]) {
    crate::simd::scal(alpha, x);
}

/// Normalizes `x` in place and returns its original norm.
///
/// If the norm is zero the vector is left untouched and `0.0` is returned.
pub fn normalize(x: &mut [f64]) -> f64 {
    let n = norm2(x);
    if n > 0.0 {
        scal(1.0 / n, x);
    }
    n
}

/// Maximum absolute difference between two vectors (`‖x − y‖∞`).
///
/// # Panics
/// Panics if the slices have different lengths.
pub fn max_abs_diff(x: &[f64], y: &[f64]) -> f64 {
    assert_eq!(x.len(), y.len(), "max_abs_diff: length mismatch");
    x.iter()
        .zip(y.iter())
        .map(|(a, b)| (a - b).abs())
        .fold(0.0, f64::max)
}

/// Removes from `v` its components along each (assumed orthonormal) vector
/// in `basis` — one *modified* Gram–Schmidt pass (each coefficient is taken
/// after the previous subtraction).
pub fn orthogonalize_against(v: &mut [f64], basis: &[Vec<f64>]) {
    for q in basis {
        let c = dot(v, q);
        axpy(-c, q, v);
    }
}

/// Below this work estimate (`v.len() · basis.len()`) the parallel
/// re-orthogonalization runs its kernels inline instead of spawning.
const PARALLEL_ORTHO_THRESHOLD: usize = 1 << 16;

/// Parallelizable re-orthogonalization: one *classical* Gram–Schmidt pass
/// with all coefficients taken against the incoming `v`, then a blocked
/// subtraction. Callers that need full orthogonality run two passes
/// ("twice is enough", CGS2) — exactly what the Lanczos sweep already does.
///
/// Determinism: the CGS algorithm runs at **every** thread count
/// (`threads == 1` and small inputs execute the same two phases inline,
/// without spawning), and each phase reduces in the same element order
/// regardless of chunking, so the result is bit-identical for every
/// `threads ≥ 1`. This is deliberately a different algorithm from the
/// serial MGS pass in [`orthogonalize_against`].
pub fn orthogonalize_against_parallel(v: &mut [f64], basis: &[Vec<f64>], threads: usize) {
    if basis.is_empty() {
        return;
    }
    let n = v.len();
    let threads = if n * basis.len() < PARALLEL_ORTHO_THRESHOLD {
        1
    } else {
        threads.max(1)
    };
    // Phase 1: coefficients c_j = <v, q_j>, parallel over basis vectors.
    let mut coeffs = vec![0.0f64; basis.len()];
    if threads == 1 {
        for (c, q) in coeffs.iter_mut().zip(basis.iter()) {
            *c = dot(v, q);
        }
    } else {
        let v_read: &[f64] = v;
        std::thread::scope(|s| {
            let mut rest = coeffs.as_mut_slice();
            let mut offset = 0;
            for range in crate::threads::even_ranges(basis.len(), threads) {
                let (chunk, tail) = rest.split_at_mut(range.len());
                rest = tail;
                let start = offset;
                offset += range.len();
                s.spawn(move || {
                    for (k, c) in chunk.iter_mut().enumerate() {
                        *c = dot(v_read, &basis[start + k]);
                    }
                });
            }
        });
    }
    // Phase 2: v -= Σ_j c_j q_j, parallel over segments of v; every element
    // accumulates its terms in ascending j order regardless of chunking.
    if threads == 1 {
        for (c, q) in coeffs.iter().zip(basis.iter()) {
            axpy(-c, q, v);
        }
        return;
    }
    std::thread::scope(|s| {
        let mut rest = &mut *v;
        let mut lo = 0;
        for range in crate::threads::even_ranges(n, threads) {
            let (seg, tail) = rest.split_at_mut(range.len());
            rest = tail;
            let seg_lo = lo;
            lo += range.len();
            let coeffs = &coeffs;
            s.spawn(move || {
                for (c, q) in coeffs.iter().zip(basis.iter()) {
                    axpy(-c, &q[seg_lo..seg_lo + seg.len()], seg);
                }
            });
        }
    });
}

/// Numerically robust `hypot` specialized to the QL iteration's needs:
/// `sqrt(a² + b²)` without overflow for the magnitudes seen here.
pub fn pythag(a: f64, b: f64) -> f64 {
    let (a, b) = (a.abs(), b.abs());
    if a > b {
        let r = b / a;
        a * (1.0 + r * r).sqrt()
    } else if b > 0.0 {
        let r = a / b;
        b * (1.0 + r * r).sqrt()
    } else {
        0.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dot_and_norm_basics() {
        let x = [3.0, 4.0];
        assert_eq!(dot(&x, &x), 25.0);
        assert_eq!(norm2(&x), 5.0);
        assert_eq!(dot(&[], &[]), 0.0);
    }

    #[test]
    fn axpy_accumulates() {
        let x = [1.0, 2.0, 3.0];
        let mut y = [10.0, 20.0, 30.0];
        axpy(2.0, &x, &mut y);
        assert_eq!(y, [12.0, 24.0, 36.0]);
    }

    #[test]
    fn axpby_scales_both_sides() {
        let x = [1.0, 2.0, 3.0];
        let mut y = [10.0, 20.0, 30.0];
        axpby(2.0, &x, 0.5, &mut y);
        assert_eq!(y, [7.0, 14.0, 21.0]);
    }

    #[test]
    fn scal_scales() {
        let mut x = [1.0, -2.0];
        scal(-3.0, &mut x);
        assert_eq!(x, [-3.0, 6.0]);
    }

    #[test]
    fn normalize_unit_norm() {
        let mut x = [3.0, 4.0];
        let n = normalize(&mut x);
        assert_eq!(n, 5.0);
        assert!((norm2(&x) - 1.0).abs() < 1e-15);
    }

    #[test]
    fn normalize_zero_vector_is_noop() {
        let mut x = [0.0, 0.0];
        assert_eq!(normalize(&mut x), 0.0);
        assert_eq!(x, [0.0, 0.0]);
    }

    #[test]
    fn orthogonalize_removes_components() {
        let q1 = vec![1.0, 0.0, 0.0];
        let q2 = vec![0.0, 1.0, 0.0];
        let mut v = vec![3.0, -2.0, 7.0];
        orthogonalize_against(&mut v, &[q1.clone(), q2.clone()]);
        assert!(dot(&v, &q1).abs() < 1e-15);
        assert!(dot(&v, &q2).abs() < 1e-15);
        assert!((v[2] - 7.0).abs() < 1e-15);
    }

    #[test]
    fn parallel_orthogonalization_is_orthogonal_and_thread_count_invariant() {
        // Large enough to clear PARALLEL_ORTHO_THRESHOLD with 8 basis vectors.
        let n = 10_000;
        let mut basis: Vec<Vec<f64>> = Vec::new();
        for j in 0..8usize {
            let mut q: Vec<f64> = (0..n)
                .map(|i| ((i * (j + 3)) as f64 * 0.013).sin())
                .collect();
            // Two serial MGS passes build an orthonormal basis.
            for _ in 0..2 {
                orthogonalize_against(&mut q, &basis);
            }
            normalize(&mut q);
            basis.push(q);
        }
        let v0: Vec<f64> = (0..n).map(|i| (i as f64 * 0.031).cos()).collect();
        let mut reference = v0.clone();
        // CGS2: two parallel passes.
        orthogonalize_against_parallel(&mut reference, &basis, 2);
        orthogonalize_against_parallel(&mut reference, &basis, 2);
        for q in &basis {
            assert!(dot(&reference, q).abs() < 1e-10);
        }
        // Every thread count — including the inline threads = 1 path —
        // runs the same CGS kernels and must be bit-identical.
        for threads in [1usize, 4, 8] {
            let mut v = v0.clone();
            orthogonalize_against_parallel(&mut v, &basis, threads);
            orthogonalize_against_parallel(&mut v, &basis, threads);
            assert_eq!(v, reference, "threads={threads}");
        }
    }

    #[test]
    fn pythag_matches_hypot() {
        for &(a, b) in &[(3.0, 4.0), (0.0, 0.0), (-5.0, 12.0), (1e-8, 1e-8)] {
            assert!((pythag(a, b) - f64::hypot(a, b)).abs() < 1e-12 * (1.0 + f64::hypot(a, b)));
        }
    }

    #[test]
    fn max_abs_diff_finds_max() {
        assert_eq!(max_abs_diff(&[1.0, 2.0], &[1.5, 0.0]), 2.0);
        assert_eq!(max_abs_diff(&[], &[]), 0.0);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn dot_panics_on_mismatch() {
        dot(&[1.0], &[1.0, 2.0]);
    }
}
