//! Error type shared by all linear-algebra routines.

use std::fmt;

/// Errors produced by `graphio-linalg` routines.
#[derive(Debug, Clone, PartialEq)]
pub enum LinalgError {
    /// Operation requires a square matrix.
    NotSquare {
        /// Number of rows of the offending matrix.
        rows: usize,
        /// Number of columns of the offending matrix.
        cols: usize,
    },
    /// Operation requires a symmetric matrix (checked up to a tolerance).
    NotSymmetric {
        /// Row index of the first asymmetric entry found.
        row: usize,
        /// Column index of the first asymmetric entry found.
        col: usize,
    },
    /// Two operands have incompatible dimensions.
    DimensionMismatch {
        /// Expected dimension.
        expected: usize,
        /// Dimension actually supplied.
        actual: usize,
    },
    /// An iterative method exhausted its iteration budget.
    NoConvergence {
        /// Name of the algorithm that failed.
        algorithm: &'static str,
        /// Number of iterations performed.
        iterations: usize,
    },
    /// The caller asked for more eigenvalues than the matrix has.
    TooManyEigenvaluesRequested {
        /// Number requested.
        requested: usize,
        /// Matrix dimension.
        dimension: usize,
    },
    /// Input data is malformed (e.g. out-of-range index in a triplet list).
    InvalidInput(String),
}

impl fmt::Display for LinalgError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LinalgError::NotSquare { rows, cols } => {
                write!(f, "matrix must be square, got {rows}x{cols}")
            }
            LinalgError::NotSymmetric { row, col } => {
                write!(f, "matrix is not symmetric at ({row},{col})")
            }
            LinalgError::DimensionMismatch { expected, actual } => {
                write!(f, "dimension mismatch: expected {expected}, got {actual}")
            }
            LinalgError::NoConvergence {
                algorithm,
                iterations,
            } => write!(
                f,
                "{algorithm} failed to converge after {iterations} iterations"
            ),
            LinalgError::TooManyEigenvaluesRequested {
                requested,
                dimension,
            } => write!(
                f,
                "requested {requested} eigenvalues from a {dimension}-dimensional matrix"
            ),
            LinalgError::InvalidInput(msg) => write!(f, "invalid input: {msg}"),
        }
    }
}

impl std::error::Error for LinalgError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        let e = LinalgError::NotSquare { rows: 2, cols: 3 };
        assert!(e.to_string().contains("2x3"));
        let e = LinalgError::NoConvergence {
            algorithm: "ql",
            iterations: 30,
        };
        assert!(e.to_string().contains("ql"));
        assert!(e.to_string().contains("30"));
        let e = LinalgError::TooManyEigenvaluesRequested {
            requested: 5,
            dimension: 3,
        };
        assert!(e.to_string().contains('5') && e.to_string().contains('3'));
    }

    #[test]
    fn errors_are_comparable() {
        assert_eq!(
            LinalgError::DimensionMismatch {
                expected: 1,
                actual: 2
            },
            LinalgError::DimensionMismatch {
                expected: 1,
                actual: 2
            }
        );
        assert_ne!(
            LinalgError::NotSymmetric { row: 0, col: 1 },
            LinalgError::NotSymmetric { row: 1, col: 0 }
        );
    }
}
