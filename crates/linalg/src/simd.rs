//! Runtime-dispatched AVX2 kernels with an always-compiled scalar fallback.
//!
//! Every hot loop in this crate — dot products, `axpy`/`axpby`/`scal`,
//! the CSR mat-vec, and the Householder rank-2 row update — funnels
//! through this module. Dispatch is decided per kernel entry from the
//! process-global [`SimdPolicy`] knob and cached
//! `is_x86_feature_detected!` probes (AVX2, plus AVX-512F where the
//! wider mat-vec body applies); on non-x86_64 targets (or when the
//! features are absent) the scalar bodies below are the only path, so
//! the fallback can never rot out of the build.
//!
//! # Determinism contract
//!
//! * **Element-wise kernels** (`axpy`, `axpby`, `scal`, the rank-2 row
//!   update) perform exactly the same multiply/add sequence per element in
//!   scalar and vector form — no FMA contraction (a fused multiply-add
//!   rounds once where `mul` + `add` round twice, so `Strict` never emits
//!   it). These are bit-identical under every policy.
//! * **Dot products** use one canonical shape in both implementations:
//!   four accumulator lanes striped over the input
//!   (`lane j ← elements j, j+4, j+8, …`), combined as
//!   `((l0 + l1) + (l2 + l3))`, then a sequential tail for the remainder.
//!   The scalar body *is* that algorithm, so `Strict` (and `Off`) produce
//!   bit-identical results whether or not AVX2 ran — and stay
//!   chunk-deterministic across thread counts, because the per-element
//!   operation sequence does not depend on how callers partition work.
//! * **CSR mat-vec** vectorizes *across* rows, not within them: graph
//!   Laplacian rows are a handful of scattered entries, far too short for
//!   in-row lanes to pay. [`crate::CsrMatrix`] stores an interleaved
//!   (SELL-style) mirror of its rows in blocks of [`SELL_ROWS`] = 8, and
//!   the kernels assign lane `r` of the accumulator to row `r`, so every
//!   row's sum accumulates **left to right in column order** — the natural
//!   scalar loop — in scalar, AVX2, and AVX-512 form alike. Short rows pad
//!   with `(col 0, value 0.0)` steps, and the scalar twin walks the same
//!   padded layout, so all three bodies are structurally bit-identical at
//!   every thread count.
//! * [`SimdPolicy::Fast`] widens dot reductions to eight striped lanes
//!   (two registers). That reassociates the horizontal sum, so `Fast`
//!   results may differ from `Strict` in the last bits; the relative error
//!   is bounded by the usual `O(n·ε)` dot-product analysis and pinned to
//!   `≤ 1e-12` by the property tests. The mat-vec has no horizontal
//!   reduction to reassociate, so `Fast` and `Strict` share its kernel.
//!
//! The knob is settable programmatically ([`set_policy`]) and via the
//! `GRAPHIO_SIMD` environment variable (`off` | `strict` | `fast`), which
//! CI uses to run the whole suite with vector code disabled.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::OnceLock;

/// How much SIMD the kernels may use.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SimdPolicy {
    /// Never dispatch to vector code (the scalar reference path).
    Off,
    /// Vector code only where results stay bit-identical to scalar
    /// (element-wise ops + the canonical striped reduction). The default.
    #[default]
    Strict,
    /// Additionally allow reassociated (wider) reduction trees; results
    /// may differ from `Strict` within a tested `1e-12` relative bound.
    Fast,
}

impl SimdPolicy {
    /// Parses the CLI / `GRAPHIO_SIMD` spelling.
    pub fn parse(s: &str) -> Option<SimdPolicy> {
        match s {
            "off" => Some(SimdPolicy::Off),
            "strict" => Some(SimdPolicy::Strict),
            "fast" => Some(SimdPolicy::Fast),
            _ => None,
        }
    }

    /// The CLI spelling (`off` | `strict` | `fast`).
    pub fn as_str(self) -> &'static str {
        match self {
            SimdPolicy::Off => "off",
            SimdPolicy::Strict => "strict",
            SimdPolicy::Fast => "fast",
        }
    }
}

/// 0 = unset (defer to `GRAPHIO_SIMD` / default); 1..=3 map to the policy.
static GLOBAL: AtomicUsize = AtomicUsize::new(0);

fn env_default() -> SimdPolicy {
    static CACHED: OnceLock<SimdPolicy> = OnceLock::new();
    *CACHED.get_or_init(|| {
        std::env::var("GRAPHIO_SIMD")
            .ok()
            .and_then(|v| SimdPolicy::parse(&v))
            .unwrap_or_default()
    })
}

/// Sets the process-global SIMD policy (overrides `GRAPHIO_SIMD`).
pub fn set_policy(policy: SimdPolicy) {
    let enc = match policy {
        SimdPolicy::Off => 1,
        SimdPolicy::Strict => 2,
        SimdPolicy::Fast => 3,
    };
    GLOBAL.store(enc, Ordering::Relaxed);
}

/// The currently configured policy (after the `GRAPHIO_SIMD` override).
pub fn policy() -> SimdPolicy {
    match GLOBAL.load(Ordering::Relaxed) {
        1 => SimdPolicy::Off,
        2 => SimdPolicy::Strict,
        3 => SimdPolicy::Fast,
        _ => env_default(),
    }
}

/// Whether the running CPU supports the AVX2 kernels.
pub fn avx2_available() -> bool {
    #[cfg(target_arch = "x86_64")]
    {
        static CACHED: OnceLock<bool> = OnceLock::new();
        *CACHED.get_or_init(|| is_x86_feature_detected!("avx2"))
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        false
    }
}

/// Whether the running CPU supports the AVX-512F mat-vec body (eight f64
/// lanes in one register — one gather per interleaved step instead of two).
pub fn avx512_available() -> bool {
    #[cfg(target_arch = "x86_64")]
    {
        static CACHED: OnceLock<bool> = OnceLock::new();
        *CACHED.get_or_init(|| is_x86_feature_detected!("avx512f"))
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        false
    }
}

/// Rows per interleaved CSR block: the lane count of one AVX-512 `f64`
/// register (two AVX2 registers). [`crate::CsrMatrix`] builds its
/// interleaved mirror in blocks of this height, and the parallel mat-vec
/// aligns its row chunks to it.
pub const SELL_ROWS: usize = 8;

/// Inputs shorter than this skip SIMD dispatch (and the stats counters)
/// entirely — a handful of scalar ops beats the vector setup.
const MIN_SIMD_LEN: usize = 8;

/// Resolved dispatch decision for one kernel entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Route {
    Scalar,
    Strict,
    Fast,
}

/// Decides the route for a kernel entry over `len` elements, ticking the
/// stats counters: one `simd_kernel_calls` per entry that dispatches to
/// vector code, one `scalar_fallbacks` per entry that wanted vector code
/// but cannot run it on this CPU.
pub(crate) fn route(len: usize) -> Route {
    let policy = policy();
    if policy == SimdPolicy::Off || len < MIN_SIMD_LEN {
        return Route::Scalar;
    }
    if !avx2_available() {
        crate::stats::record_scalar_fallback();
        return Route::Scalar;
    }
    crate::stats::record_simd_kernel_call();
    match policy {
        SimdPolicy::Fast => Route::Fast,
        _ => Route::Strict,
    }
}

// ---------------------------------------------------------------------------
// Canonical scalar bodies (the reference semantics for `Strict`).
// ---------------------------------------------------------------------------

/// Canonical striped-lane dot product: the scalar spelling of the `Strict`
/// reduction (4 lanes, `((l0+l1)+(l2+l3))`, sequential tail).
pub fn dot_scalar(x: &[f64], y: &[f64]) -> f64 {
    debug_assert_eq!(x.len(), y.len());
    let n = x.len();
    let quads = n - n % 4;
    let mut l = [0.0f64; 4];
    let mut i = 0;
    while i < quads {
        l[0] += x[i] * y[i];
        l[1] += x[i + 1] * y[i + 1];
        l[2] += x[i + 2] * y[i + 2];
        l[3] += x[i + 3] * y[i + 3];
        i += 4;
    }
    let mut tail = 0.0;
    for k in quads..n {
        tail += x[k] * y[k];
    }
    ((l[0] + l[1]) + (l[2] + l[3])) + tail
}

/// Reference interleaved mat-vec over blocks `first_block ..`: lane `r`
/// of each 8-wide accumulator is row `r`, each lane summing its row's
/// entries left to right in column order (padding steps contribute
/// `0.0 · x[0]`). The vector bodies replay exactly this per-lane op
/// sequence, so all three are bit-identical.
///
/// `sell_ptr[b] .. sell_ptr[b + 1]` is block `b`'s step range; step `s`
/// of a block stores its 8 columns at `cols[s*8 .. s*8+8]` (values
/// likewise). `y` covers rows `first_block*8 .. first_block*8 + y.len()`
/// and, except for the final block, must span whole blocks.
pub(crate) fn sell_matvec_scalar(
    sell_ptr: &[usize],
    cols: &[u32],
    vals: &[f64],
    x: &[f64],
    y: &mut [f64],
    first_block: usize,
) {
    for (bi, yb) in y.chunks_mut(SELL_ROWS).enumerate() {
        let b = first_block + bi;
        let mut acc = [0.0f64; SELL_ROWS];
        let mut p = sell_ptr[b] * SELL_ROWS;
        for _ in sell_ptr[b]..sell_ptr[b + 1] {
            for (l, a) in acc.iter_mut().enumerate() {
                *a += vals[p + l] * x[cols[p + l] as usize];
            }
            p += SELL_ROWS;
        }
        yb.copy_from_slice(&acc[..yb.len()]);
    }
}

fn axpy_scalar(alpha: f64, x: &[f64], y: &mut [f64]) {
    for (yi, xi) in y.iter_mut().zip(x.iter()) {
        *yi += alpha * xi;
    }
}

fn axpby_scalar(alpha: f64, x: &[f64], beta: f64, y: &mut [f64]) {
    for (yi, xi) in y.iter_mut().zip(x.iter()) {
        *yi = alpha * xi + beta * *yi;
    }
}

fn scal_scalar(alpha: f64, x: &mut [f64]) {
    for xi in x.iter_mut() {
        *xi *= alpha;
    }
}

fn rank2_row_scalar(row: &mut [f64], uj: f64, ej: f64, e: &[f64], u: &[f64]) {
    for ((rk, ek), uk) in row.iter_mut().zip(e.iter()).zip(u.iter()) {
        *rk -= uj * ek + ej * uk;
    }
}

// ---------------------------------------------------------------------------
// AVX2 bodies.
// ---------------------------------------------------------------------------

#[cfg(target_arch = "x86_64")]
mod avx2 {
    use std::arch::x86_64::*;

    /// `Strict` dot: one 4-lane accumulator, `mul` + `add` per step (no
    /// FMA), lanes combined exactly like [`super::dot_scalar`].
    ///
    /// # Safety
    /// Caller must ensure AVX2 is available and `x.len() == y.len()`.
    #[target_feature(enable = "avx2")]
    pub unsafe fn dot_strict(x: &[f64], y: &[f64]) -> f64 {
        let n = x.len();
        let quads = n - n % 4;
        let mut acc = _mm256_setzero_pd();
        let mut i = 0;
        while i < quads {
            let xv = _mm256_loadu_pd(x.as_ptr().add(i));
            let yv = _mm256_loadu_pd(y.as_ptr().add(i));
            acc = _mm256_add_pd(acc, _mm256_mul_pd(xv, yv));
            i += 4;
        }
        let mut l = [0.0f64; 4];
        _mm256_storeu_pd(l.as_mut_ptr(), acc);
        let mut tail = 0.0;
        for k in quads..n {
            tail += x[k] * y[k];
        }
        ((l[0] + l[1]) + (l[2] + l[3])) + tail
    }

    /// `Fast` dot: two 4-lane accumulators striped over 8 elements, folded
    /// register-wise before the lane combine — a reassociated (wider)
    /// reduction that is *not* bit-identical to [`super::dot_scalar`].
    ///
    /// # Safety
    /// Caller must ensure AVX2 is available and `x.len() == y.len()`.
    #[target_feature(enable = "avx2")]
    pub unsafe fn dot_fast(x: &[f64], y: &[f64]) -> f64 {
        let n = x.len();
        let octs = n - n % 8;
        let mut acc0 = _mm256_setzero_pd();
        let mut acc1 = _mm256_setzero_pd();
        let mut i = 0;
        while i < octs {
            let x0 = _mm256_loadu_pd(x.as_ptr().add(i));
            let y0 = _mm256_loadu_pd(y.as_ptr().add(i));
            acc0 = _mm256_add_pd(acc0, _mm256_mul_pd(x0, y0));
            let x1 = _mm256_loadu_pd(x.as_ptr().add(i + 4));
            let y1 = _mm256_loadu_pd(y.as_ptr().add(i + 4));
            acc1 = _mm256_add_pd(acc1, _mm256_mul_pd(x1, y1));
            i += 8;
        }
        let acc = _mm256_add_pd(acc0, acc1);
        let mut l = [0.0f64; 4];
        _mm256_storeu_pd(l.as_mut_ptr(), acc);
        let mut tail = 0.0;
        for k in octs..n {
            tail += x[k] * y[k];
        }
        ((l[0] + l[1]) + (l[2] + l[3])) + tail
    }

    /// Interleaved mat-vec, two 4-lane registers per 8-row block — the
    /// same per-lane op sequence as [`super::sell_matvec_scalar`]. Steps
    /// whose 8 columns are consecutive (`c0 .. c0+8`, common for the
    /// structured generator families: the diagonal and any "straight"
    /// edge map 8 consecutive rows to 8 consecutive columns) use plain
    /// vector loads; scattered steps use hardware gathers — either way
    /// the same `x` elements reach the same lanes.
    ///
    /// # Safety
    /// Caller must ensure AVX2 is available, the interleaved layout is
    /// well-formed (as described on `sell_matvec_scalar`), and every
    /// column index is `< x.len()` and `<= i32::MAX`.
    #[target_feature(enable = "avx2")]
    pub unsafe fn sell_matvec(
        sell_ptr: &[usize],
        cols: &[u32],
        vals: &[f64],
        x: &[f64],
        y: &mut [f64],
        first_block: usize,
    ) {
        const C: usize = super::SELL_ROWS;
        let step = _mm_setr_epi32(0, 1, 2, 3);
        for (bi, yb) in y.chunks_mut(C).enumerate() {
            let b = first_block + bi;
            let mut acc0 = _mm256_setzero_pd();
            let mut acc1 = _mm256_setzero_pd();
            let mut p = sell_ptr[b] * C;
            for _ in sell_ptr[b]..sell_ptr[b + 1] {
                let c0 = *cols.get_unchecked(p);
                let i0 = _mm_loadu_si128(cols.as_ptr().add(p) as *const __m128i);
                let i1 = _mm_loadu_si128(cols.as_ptr().add(p + 4) as *const __m128i);
                let e0 = _mm_add_epi32(_mm_set1_epi32(c0 as i32), step);
                let e1 = _mm_add_epi32(_mm_set1_epi32((c0 as i32).wrapping_add(4)), step);
                let contiguous = _mm_movemask_epi8(_mm_cmpeq_epi32(i0, e0)) == 0xFFFF
                    && _mm_movemask_epi8(_mm_cmpeq_epi32(i1, e1)) == 0xFFFF;
                let (x0, x1) = if contiguous {
                    let base = x.as_ptr().add(c0 as usize);
                    (_mm256_loadu_pd(base), _mm256_loadu_pd(base.add(4)))
                } else {
                    (
                        _mm256_i32gather_pd::<8>(x.as_ptr(), i0),
                        _mm256_i32gather_pd::<8>(x.as_ptr(), i1),
                    )
                };
                let v0 = _mm256_loadu_pd(vals.as_ptr().add(p));
                let v1 = _mm256_loadu_pd(vals.as_ptr().add(p + 4));
                acc0 = _mm256_add_pd(acc0, _mm256_mul_pd(v0, x0));
                acc1 = _mm256_add_pd(acc1, _mm256_mul_pd(v1, x1));
                p += C;
            }
            let mut out = [0.0f64; C];
            _mm256_storeu_pd(out.as_mut_ptr(), acc0);
            _mm256_storeu_pd(out.as_mut_ptr().add(4), acc1);
            yb.copy_from_slice(&out[..yb.len()]);
        }
    }

    /// `y ← y + alpha·x` (element-wise; bit-identical to scalar).
    ///
    /// # Safety
    /// Caller must ensure AVX2 is available and `x.len() == y.len()`.
    #[target_feature(enable = "avx2")]
    pub unsafe fn axpy(alpha: f64, x: &[f64], y: &mut [f64]) {
        let n = y.len();
        let quads = n - n % 4;
        let a = _mm256_set1_pd(alpha);
        let mut i = 0;
        while i < quads {
            let xv = _mm256_loadu_pd(x.as_ptr().add(i));
            let yv = _mm256_loadu_pd(y.as_ptr().add(i));
            _mm256_storeu_pd(
                y.as_mut_ptr().add(i),
                _mm256_add_pd(yv, _mm256_mul_pd(a, xv)),
            );
            i += 4;
        }
        for k in quads..n {
            y[k] += alpha * x[k];
        }
    }

    /// `y ← alpha·x + beta·y` (element-wise; bit-identical to scalar).
    ///
    /// # Safety
    /// Caller must ensure AVX2 is available and `x.len() == y.len()`.
    #[target_feature(enable = "avx2")]
    pub unsafe fn axpby(alpha: f64, x: &[f64], beta: f64, y: &mut [f64]) {
        let n = y.len();
        let quads = n - n % 4;
        let a = _mm256_set1_pd(alpha);
        let b = _mm256_set1_pd(beta);
        let mut i = 0;
        while i < quads {
            let xv = _mm256_loadu_pd(x.as_ptr().add(i));
            let yv = _mm256_loadu_pd(y.as_ptr().add(i));
            _mm256_storeu_pd(
                y.as_mut_ptr().add(i),
                _mm256_add_pd(_mm256_mul_pd(a, xv), _mm256_mul_pd(b, yv)),
            );
            i += 4;
        }
        for k in quads..n {
            y[k] = alpha * x[k] + beta * y[k];
        }
    }

    /// `x ← alpha·x` (element-wise; bit-identical to scalar).
    ///
    /// # Safety
    /// Caller must ensure AVX2 is available.
    #[target_feature(enable = "avx2")]
    pub unsafe fn scal(alpha: f64, x: &mut [f64]) {
        let n = x.len();
        let quads = n - n % 4;
        let a = _mm256_set1_pd(alpha);
        let mut i = 0;
        while i < quads {
            let xv = _mm256_loadu_pd(x.as_ptr().add(i));
            _mm256_storeu_pd(x.as_mut_ptr().add(i), _mm256_mul_pd(a, xv));
            i += 4;
        }
        for xk in &mut x[quads..] {
            *xk *= alpha;
        }
    }

    /// `row[k] -= uj·e[k] + ej·u[k]` (element-wise; bit-identical to
    /// scalar: the inner sum is `add(mul, mul)` in both forms).
    ///
    /// # Safety
    /// Caller must ensure AVX2 is available and
    /// `row.len() <= min(e.len(), u.len())`.
    #[target_feature(enable = "avx2")]
    pub unsafe fn rank2_row(row: &mut [f64], uj: f64, ej: f64, e: &[f64], u: &[f64]) {
        let n = row.len();
        let quads = n - n % 4;
        let ujv = _mm256_set1_pd(uj);
        let ejv = _mm256_set1_pd(ej);
        let mut i = 0;
        while i < quads {
            let ev = _mm256_loadu_pd(e.as_ptr().add(i));
            let uv = _mm256_loadu_pd(u.as_ptr().add(i));
            let rv = _mm256_loadu_pd(row.as_ptr().add(i));
            let upd = _mm256_add_pd(_mm256_mul_pd(ujv, ev), _mm256_mul_pd(ejv, uv));
            _mm256_storeu_pd(row.as_mut_ptr().add(i), _mm256_sub_pd(rv, upd));
            i += 4;
        }
        for k in quads..n {
            row[k] -= uj * e[k] + ej * u[k];
        }
    }
}

#[cfg(target_arch = "x86_64")]
mod avx512 {
    use std::arch::x86_64::*;

    /// Interleaved mat-vec, one 8-lane register per block — the same
    /// per-lane op sequence as [`super::sell_matvec_scalar`] and
    /// [`super::avx2::sell_matvec`], but each step is a single 8-wide
    /// load-or-gather plus one `mul` + `add`.
    ///
    /// # Safety
    /// Caller must ensure AVX-512F is available, the interleaved layout
    /// is well-formed, and every column index is `< x.len()` and
    /// `<= i32::MAX`.
    #[target_feature(enable = "avx512f")]
    pub unsafe fn sell_matvec(
        sell_ptr: &[usize],
        cols: &[u32],
        vals: &[f64],
        x: &[f64],
        y: &mut [f64],
        first_block: usize,
    ) {
        const C: usize = super::SELL_ROWS;
        let iota = _mm256_setr_epi32(0, 1, 2, 3, 4, 5, 6, 7);
        for (bi, yb) in y.chunks_mut(C).enumerate() {
            let b = first_block + bi;
            let mut acc = _mm512_setzero_pd();
            let mut p = sell_ptr[b] * C;
            for _ in sell_ptr[b]..sell_ptr[b + 1] {
                let c0 = *cols.get_unchecked(p);
                let idx = _mm256_loadu_si256(cols.as_ptr().add(p) as *const __m256i);
                let expect = _mm256_add_epi32(_mm256_set1_epi32(c0 as i32), iota);
                let eq = _mm256_cmpeq_epi32(idx, expect);
                let xv = if _mm256_movemask_epi8(eq) == -1 {
                    _mm512_loadu_pd(x.as_ptr().add(c0 as usize))
                } else {
                    _mm512_i32gather_pd::<8>(idx, x.as_ptr())
                };
                let vv = _mm512_loadu_pd(vals.as_ptr().add(p));
                acc = _mm512_add_pd(acc, _mm512_mul_pd(vv, xv));
                p += C;
            }
            let mut out = [0.0f64; C];
            _mm512_storeu_pd(out.as_mut_ptr(), acc);
            yb.copy_from_slice(&out[..yb.len()]);
        }
    }
}

// ---------------------------------------------------------------------------
// Dispatching entry points (used by `vecops`, `csr`, `householder`).
// ---------------------------------------------------------------------------

/// Dot product under the active policy.
pub(crate) fn dot(x: &[f64], y: &[f64]) -> f64 {
    match route(x.len()) {
        Route::Scalar => dot_scalar(x, y),
        #[cfg(target_arch = "x86_64")]
        // SAFETY: route() returned a SIMD lane only after the AVX2 probe,
        // and callers checked the lengths.
        Route::Strict => unsafe { avx2::dot_strict(x, y) },
        #[cfg(target_arch = "x86_64")]
        Route::Fast => unsafe { avx2::dot_fast(x, y) },
        #[cfg(not(target_arch = "x86_64"))]
        _ => dot_scalar(x, y),
    }
}

/// `y ← y + alpha·x` under the active policy.
pub(crate) fn axpy(alpha: f64, x: &[f64], y: &mut [f64]) {
    match route(y.len()) {
        Route::Scalar => axpy_scalar(alpha, x, y),
        #[cfg(target_arch = "x86_64")]
        // SAFETY: as in `dot`.
        _ => unsafe { avx2::axpy(alpha, x, y) },
        #[cfg(not(target_arch = "x86_64"))]
        _ => axpy_scalar(alpha, x, y),
    }
}

/// `y ← alpha·x + beta·y` under the active policy.
pub(crate) fn axpby(alpha: f64, x: &[f64], beta: f64, y: &mut [f64]) {
    match route(y.len()) {
        Route::Scalar => axpby_scalar(alpha, x, beta, y),
        #[cfg(target_arch = "x86_64")]
        // SAFETY: as in `dot`.
        _ => unsafe { avx2::axpby(alpha, x, beta, y) },
        #[cfg(not(target_arch = "x86_64"))]
        _ => axpby_scalar(alpha, x, beta, y),
    }
}

/// `x ← alpha·x` under the active policy.
pub(crate) fn scal(alpha: f64, x: &mut [f64]) {
    match route(x.len()) {
        Route::Scalar => scal_scalar(alpha, x),
        #[cfg(target_arch = "x86_64")]
        // SAFETY: as in `dot`.
        _ => unsafe { avx2::scal(alpha, x) },
        #[cfg(not(target_arch = "x86_64"))]
        _ => scal_scalar(alpha, x),
    }
}

/// `row[k] -= uj·e[k] + ej·u[k]` under a pre-resolved route (the
/// Householder panel kernels resolve once per panel, not once per row).
pub(crate) fn rank2_row_routed(
    route: Route,
    row: &mut [f64],
    uj: f64,
    ej: f64,
    e: &[f64],
    u: &[f64],
) {
    match route {
        Route::Scalar => rank2_row_scalar(row, uj, ej, e, u),
        #[cfg(target_arch = "x86_64")]
        // SAFETY: the caller resolved the route via `route()`, which only
        // returns a SIMD lane after the AVX2 probe.
        _ => unsafe { avx2::rank2_row(row, uj, ej, e, u) },
        #[cfg(not(target_arch = "x86_64"))]
        _ => rank2_row_scalar(row, uj, ej, e, u),
    }
}

/// `y ← y + alpha·x` under a pre-resolved route.
pub(crate) fn axpy_routed(route: Route, alpha: f64, x: &[f64], y: &mut [f64]) {
    match route {
        Route::Scalar => axpy_scalar(alpha, x, y),
        #[cfg(target_arch = "x86_64")]
        // SAFETY: as in `rank2_row_routed`.
        _ => unsafe { avx2::axpy(alpha, x, y) },
        #[cfg(not(target_arch = "x86_64"))]
        _ => axpy_scalar(alpha, x, y),
    }
}

/// Interleaved mat-vec under a pre-resolved route (the mat-vec resolves
/// once per call, then every block runs the same body). `Fast` shares the
/// `Strict` kernel: lanes are rows, so there is no horizontal reduction
/// to reassociate. The widest available body wins — AVX-512F when the
/// CPU has it, else AVX2.
pub(crate) fn sell_matvec_routed(
    route: Route,
    sell_ptr: &[usize],
    cols: &[u32],
    vals: &[f64],
    x: &[f64],
    y: &mut [f64],
    first_block: usize,
) {
    match route {
        Route::Scalar => sell_matvec_scalar(sell_ptr, cols, vals, x, y, first_block),
        #[cfg(target_arch = "x86_64")]
        // SAFETY: the caller resolved the route via `route()`, which only
        // returns a SIMD lane after the AVX2 probe; `CsrMatrix` guards the
        // `i32::MAX` column range before engaging SIMD and owns the layout
        // invariants.
        _ => unsafe {
            if avx512_available() {
                avx512::sell_matvec(sell_ptr, cols, vals, x, y, first_block)
            } else {
                avx2::sell_matvec(sell_ptr, cols, vals, x, y, first_block)
            }
        },
        #[cfg(not(target_arch = "x86_64"))]
        _ => sell_matvec_scalar(sell_ptr, cols, vals, x, y, first_block),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn vecs(n: usize) -> (Vec<f64>, Vec<f64>) {
        let x: Vec<f64> = (0..n).map(|i| ((i * 7 + 3) as f64 * 0.137).sin()).collect();
        let y: Vec<f64> = (0..n).map(|i| ((i * 5 + 1) as f64 * 0.211).cos()).collect();
        (x, y)
    }

    #[test]
    fn policy_parse_round_trips() {
        for p in [SimdPolicy::Off, SimdPolicy::Strict, SimdPolicy::Fast] {
            assert_eq!(SimdPolicy::parse(p.as_str()), Some(p));
        }
        assert_eq!(SimdPolicy::parse("avx512"), None);
    }

    #[cfg(target_arch = "x86_64")]
    #[test]
    fn strict_kernels_bit_identical_for_all_remainders() {
        if !avx2_available() {
            return;
        }
        // Lengths 0..64 cover every remainder class of the 4-wide loops.
        for n in 0..64usize {
            let (x, mut y) = vecs(n);
            // SAFETY: guarded by avx2_available() above.
            unsafe {
                assert_eq!(dot_scalar(&x, &y), avx2::dot_strict(&x, &y), "dot n={n}");
                let mut y2 = y.clone();
                axpy_scalar(0.37, &x, &mut y);
                avx2::axpy(0.37, &x, &mut y2);
                assert_eq!(y, y2, "axpy n={n}");
                axpby_scalar(1.25, &x, -0.5, &mut y);
                avx2::axpby(1.25, &x, -0.5, &mut y2);
                assert_eq!(y, y2, "axpby n={n}");
                scal_scalar(-1.75, &mut y);
                avx2::scal(-1.75, &mut y2);
                assert_eq!(y, y2, "scal n={n}");
                let e: Vec<f64> = (0..n).map(|i| (i as f64 * 0.31).sin()).collect();
                rank2_row_scalar(&mut y, 0.9, -1.1, &e, &x);
                avx2::rank2_row(&mut y2, 0.9, -1.1, &e, &x);
                assert_eq!(y, y2, "rank2 n={n}");
            }
        }
    }

    #[cfg(target_arch = "x86_64")]
    #[test]
    fn fast_dot_within_relative_tolerance() {
        if !avx2_available() {
            return;
        }
        for n in [0usize, 1, 7, 8, 9, 63, 64, 65, 1000, 4096] {
            let (x, y) = vecs(n);
            let strict = dot_scalar(&x, &y);
            // SAFETY: guarded by avx2_available() above.
            let fast = unsafe { avx2::dot_fast(&x, &y) };
            let scale = x
                .iter()
                .zip(&y)
                .map(|(a, b)| (a * b).abs())
                .sum::<f64>()
                .max(1.0);
            assert!(
                (strict - fast).abs() <= 1e-12 * scale,
                "n={n}: strict={strict} fast={fast}"
            );
        }
    }

    /// Hand-builds an interleaved layout: block `b` holds rows
    /// `b*8 .. b*8+8` with the given per-row `(cols, vals)`.
    fn sell_layout(rows: &[(Vec<u32>, Vec<f64>)]) -> (Vec<usize>, Vec<u32>, Vec<f64>) {
        let nblocks = rows.len().div_ceil(SELL_ROWS);
        let mut ptr = vec![0usize];
        let (mut cols, mut vals) = (Vec::new(), Vec::new());
        for b in 0..nblocks {
            let block = &rows[b * SELL_ROWS..rows.len().min((b + 1) * SELL_ROWS)];
            let steps = block.iter().map(|(c, _)| c.len()).max().unwrap_or(0);
            for k in 0..steps {
                for lane in 0..SELL_ROWS {
                    let (c, v) = block
                        .get(lane)
                        .and_then(|(rc, rv)| rc.get(k).map(|&c| (c, rv[k])))
                        .unwrap_or((0, 0.0));
                    cols.push(c);
                    vals.push(v);
                }
            }
            ptr.push(ptr[b] + steps);
        }
        (ptr, cols, vals)
    }

    #[cfg(target_arch = "x86_64")]
    #[test]
    fn sell_matvec_bodies_bit_identical_across_patterns() {
        if !avx2_available() {
            return;
        }
        let x: Vec<f64> = (0..256).map(|i| (i as f64 * 0.173).sin()).collect();
        // Row counts covering partial final blocks, with contiguous,
        // scattered, mixed, and empty rows of assorted lengths — the
        // contiguity fast path, the gather path, and padding all engage.
        for nrows in [1usize, 7, 8, 9, 16, 23] {
            let rows: Vec<(Vec<u32>, Vec<f64>)> = (0..nrows)
                .map(|r| {
                    let len = [0usize, 3, 5, 8, 13, 21][r % 6];
                    let cols: Vec<u32> = if r % 3 == 0 {
                        (r as u32 * 8..r as u32 * 8 + len as u32).collect()
                    } else {
                        let mut c: Vec<u32> = (0..len as u32)
                            .map(|i| (i * 37 + r as u32 * 11) % 256)
                            .collect();
                        c.sort_unstable();
                        c.dedup();
                        c
                    };
                    let vals: Vec<f64> = (0..cols.len())
                        .map(|i| ((i + r) as f64 * 0.91).cos())
                        .collect();
                    (cols, vals)
                })
                .collect();
            let (ptr, cols, vals) = sell_layout(&rows);
            let mut y_ref = vec![0.0f64; nrows];
            sell_matvec_scalar(&ptr, &cols, &vals, &x, &mut y_ref, 0);
            // Plain per-row sequential sums must agree exactly (padding
            // only appends `+ 0.0 · x[0]` terms).
            for (r, (rc, rv)) in rows.iter().enumerate() {
                let mut s = 0.0;
                for (c, v) in rc.iter().zip(rv) {
                    s += v * x[*c as usize];
                }
                assert_eq!(s, y_ref[r], "row {r}");
            }
            let mut y = vec![0.0f64; nrows];
            // SAFETY: guarded by avx2_available(); columns < 256.
            unsafe { avx2::sell_matvec(&ptr, &cols, &vals, &x, &mut y, 0) };
            assert_eq!(y_ref, y, "avx2 nrows={nrows}");
            if avx512_available() {
                let mut y = vec![0.0f64; nrows];
                // SAFETY: guarded by avx512_available(); columns < 256.
                unsafe { avx512::sell_matvec(&ptr, &cols, &vals, &x, &mut y, 0) };
                assert_eq!(y_ref, y, "avx512 nrows={nrows}");
            }
        }
    }
}
