//! Worker-thread configuration for the parallel kernels.
//!
//! Every parallel kernel in this crate (sparse mat-vec, Householder panel
//! updates, blocked Gram–Schmidt) takes an explicit thread count; callers
//! that don't care use the process-global [`Threads`] knob, which defaults
//! to the machine's available parallelism. The CLI's `--threads N` and the
//! bench harness both set it via [`set_threads`].
//!
//! All kernels are *chunk-deterministic*: for a fixed input they produce
//! bit-identical results regardless of the thread count, because each
//! output element is always computed by the same sequence of operations —
//! threading only changes which worker runs it.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::OnceLock;

/// Thread-count selection for the parallel kernels.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Threads {
    /// Use [`std::thread::available_parallelism`] (the default).
    #[default]
    Auto,
    /// Use exactly this many worker threads (clamped to ≥ 1).
    Fixed(usize),
}

impl Threads {
    /// Resolves to a concrete thread count (≥ 1).
    pub fn get(self) -> usize {
        match self {
            Threads::Auto => available(),
            Threads::Fixed(n) => n.max(1),
        }
    }
}

/// 0 encodes `Auto`; any other value is `Fixed`.
static GLOBAL: AtomicUsize = AtomicUsize::new(0);

fn available() -> usize {
    static CACHED: OnceLock<usize> = OnceLock::new();
    *CACHED.get_or_init(|| std::thread::available_parallelism().map_or(1, |p| p.get()))
}

/// Sets the process-global thread count; `0` restores `Auto`.
pub fn set_threads(n: usize) {
    GLOBAL.store(n, Ordering::Relaxed);
}

/// Sets the process-global knob from a [`Threads`] value.
pub fn set_global(threads: Threads) {
    match threads {
        Threads::Auto => set_threads(0),
        Threads::Fixed(n) => set_threads(n.max(1)),
    }
}

/// The currently configured global knob.
pub fn global() -> Threads {
    match GLOBAL.load(Ordering::Relaxed) {
        0 => Threads::Auto,
        n => Threads::Fixed(n),
    }
}

/// The concrete thread count kernels should use right now (≥ 1).
pub fn effective_threads() -> usize {
    global().get()
}

/// Splits `0..total` into at most `parts` contiguous, non-empty ranges.
pub(crate) fn even_ranges(total: usize, parts: usize) -> Vec<std::ops::Range<usize>> {
    let parts = parts.max(1).min(total.max(1));
    let chunk = total.div_ceil(parts);
    (0..total)
        .step_by(chunk.max(1))
        .map(|start| start..(start + chunk).min(total))
        .collect()
}

/// Splits row indices `0..=l` of a lower-triangular sweep into `parts`
/// ranges of approximately equal *work* (row `r` costs `r + 1` operations),
/// using the square-root rule: boundary `t` sits near `(l+1)·√(t/parts)`.
pub(crate) fn triangle_ranges(rows: usize, parts: usize) -> Vec<std::ops::Range<usize>> {
    let parts = parts.max(1).min(rows.max(1));
    let mut bounds: Vec<usize> = (0..=parts)
        .map(|t| ((rows as f64) * (t as f64 / parts as f64).sqrt()).round() as usize)
        .collect();
    bounds[0] = 0;
    bounds[parts] = rows;
    for t in 1..parts {
        bounds[t] = bounds[t].clamp(bounds[t - 1], rows);
    }
    (0..parts)
        .map(|t| bounds[t]..bounds[t + 1])
        .filter(|r| !r.is_empty())
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn even_ranges_cover_exactly() {
        for total in [0usize, 1, 7, 64, 100] {
            for parts in [1usize, 2, 3, 8, 200] {
                let ranges = even_ranges(total, parts);
                let mut covered = 0;
                let mut expected_start = 0;
                for r in &ranges {
                    assert_eq!(r.start, expected_start);
                    expected_start = r.end;
                    covered += r.len();
                }
                assert_eq!(covered, total);
            }
        }
    }

    #[test]
    fn triangle_ranges_cover_and_balance() {
        let ranges = triangle_ranges(1000, 4);
        assert_eq!(ranges.first().unwrap().start, 0);
        assert_eq!(ranges.last().unwrap().end, 1000);
        let work: Vec<usize> = ranges
            .iter()
            .map(|r| r.clone().map(|i| i + 1).sum())
            .collect();
        let max = *work.iter().max().unwrap() as f64;
        let min = *work.iter().min().unwrap() as f64;
        assert!(max / min < 1.5, "imbalanced: {work:?}");
    }

    #[test]
    fn fixed_and_auto_resolve() {
        assert_eq!(Threads::Fixed(4).get(), 4);
        assert_eq!(Threads::Fixed(0).get(), 1);
        assert!(Threads::Auto.get() >= 1);
    }
}
