//! Abstract symmetric linear operators.
//!
//! Lanczos only needs `y = A x`; abstracting over the representation lets
//! the same solver run on dense matrices (tests), CSR Laplacians
//! (production), and spectral shifts thereof.

use crate::csr::CsrMatrix;
use crate::dense::DenseMatrix;

/// A symmetric linear operator on `R^n`.
pub trait LinOp {
    /// Dimension `n` of the operator.
    fn dim(&self) -> usize;

    /// Computes `y = A x`.
    fn apply(&self, x: &[f64], y: &mut [f64]);

    /// An upper bound on the largest eigenvalue, if cheaply available.
    /// Used by shift-based transforms; defaults to `None`.
    fn eigen_upper_bound(&self) -> Option<f64> {
        None
    }
}

impl LinOp for CsrMatrix {
    fn dim(&self) -> usize {
        self.dim()
    }

    fn apply(&self, x: &[f64], y: &mut [f64]) {
        self.matvec_parallel(x, y, crate::threads::effective_threads());
    }

    fn eigen_upper_bound(&self) -> Option<f64> {
        Some(self.gershgorin_upper_bound())
    }
}

impl LinOp for DenseMatrix {
    fn dim(&self) -> usize {
        self.nrows()
    }

    fn apply(&self, x: &[f64], y: &mut [f64]) {
        self.matvec(x, y);
    }
}

/// The operator `σI − A`: maps the *smallest* eigenvalues of `A` to the
/// *largest* eigenvalues of the transformed operator, which is where plain
/// Lanczos converges fastest. Choosing `σ` at least `λ_max(A)` (e.g. the
/// Gershgorin bound) keeps the transform monotone and PSD.
pub struct ShiftedNegated<'a, A: LinOp + ?Sized> {
    inner: &'a A,
    sigma: f64,
}

impl<'a, A: LinOp + ?Sized> ShiftedNegated<'a, A> {
    /// Wraps `inner` as `σI − inner`.
    pub fn new(inner: &'a A, sigma: f64) -> Self {
        ShiftedNegated { inner, sigma }
    }

    /// The shift σ.
    pub fn sigma(&self) -> f64 {
        self.sigma
    }

    /// Maps an eigenvalue of the shifted operator back to the original:
    /// `λ(A) = σ − λ(σI − A)`.
    pub fn unshift(&self, transformed: f64) -> f64 {
        self.sigma - transformed
    }
}

impl<'a, A: LinOp + ?Sized> LinOp for ShiftedNegated<'a, A> {
    fn dim(&self) -> usize {
        self.inner.dim()
    }

    fn apply(&self, x: &[f64], y: &mut [f64]) {
        self.inner.apply(x, y);
        for (yi, xi) in y.iter_mut().zip(x.iter()) {
            *yi = self.sigma * xi - *yi;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dense_linop_applies() {
        let a = DenseMatrix::from_rows(&[&[2.0, 1.0], &[1.0, 2.0]]);
        let mut y = [0.0; 2];
        LinOp::apply(&a, &[1.0, 0.0], &mut y);
        assert_eq!(y, [2.0, 1.0]);
        assert_eq!(LinOp::dim(&a), 2);
    }

    #[test]
    fn csr_linop_applies() {
        let m = CsrMatrix::from_triplets(2, &[(0, 0, 3.0), (1, 1, 4.0)]).unwrap();
        let mut y = [0.0; 2];
        LinOp::apply(&m, &[1.0, 1.0], &mut y);
        assert_eq!(y, [3.0, 4.0]);
        assert_eq!(m.eigen_upper_bound(), Some(4.0));
    }

    #[test]
    fn shifted_negated_flips_spectrum() {
        let a = DenseMatrix::from_rows(&[&[1.0, 0.0], &[0.0, 5.0]]);
        let s = ShiftedNegated::new(&a, 10.0);
        let mut y = [0.0; 2];
        s.apply(&[1.0, 1.0], &mut y);
        // (10 - 1) * 1, (10 - 5) * 1
        assert_eq!(y, [9.0, 5.0]);
        assert_eq!(s.unshift(9.0), 1.0);
        assert_eq!(s.unshift(5.0), 5.0);
    }
}
