//! `graphio` command-line tool: generate computation graphs, compute I/O
//! lower bounds, and simulate executions from the shell.
//!
//! ```text
//! graphio generate fft 6                     # emit edge-list JSON on stdout
//! graphio bound --memory 4 < graph.json      # spectral + min-cut bounds
//! graphio simulate --memory 4 --policy lru < graph.json
//! graphio dot < graph.json                   # Graphviz rendering
//! ```

use graphio::baselines::convex_mincut::{convex_min_cut_bound, ConvexMinCutOptions, VertexSweep};
use graphio::graph::dot::{to_dot, DotOptions};
use graphio::graph::generators::{
    bhk_hypercube, diamond_dag, erdos_renyi_dag, fft_butterfly, inner_product, naive_matmul,
    strassen_matmul,
};
use graphio::graph::topo::{bfs_order, dfs_order, natural_order};
use graphio::graph::{CompGraph, EdgeListGraph};
use graphio::pebble::{simulate, Policy};
use graphio::spectral::{spectral_bound, BoundOptions};
use std::io::Read;

fn usage() -> ! {
    eprintln!(
        "usage:\n  graphio generate <family> <size> [--p <prob>] [--seed <s>]\n  \
         graphio bound --memory <M> [--processors <p>] < graph.json\n  \
         graphio simulate --memory <M> [--policy lru|fifo|belady|random] [--order natural|dfs|bfs] < graph.json\n  \
         graphio dot < graph.json\n\n\
         families: fft, bhk, matmul, strassen, inner, diamond, er"
    );
    std::process::exit(2)
}

fn read_graph_from_stdin() -> CompGraph {
    let mut buf = String::new();
    std::io::stdin()
        .read_to_string(&mut buf)
        .unwrap_or_else(|e| {
            eprintln!("error reading stdin: {e}");
            std::process::exit(1);
        });
    let el: EdgeListGraph = serde_json::from_str(&buf).unwrap_or_else(|e| {
        eprintln!("error parsing graph JSON: {e}");
        std::process::exit(1);
    });
    CompGraph::try_from(el).unwrap_or_else(|e| {
        eprintln!("invalid graph: {e}");
        std::process::exit(1);
    })
}

fn flag_value(args: &[String], flag: &str) -> Option<String> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1).cloned())
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(cmd) = args.first() else { usage() };
    match cmd.as_str() {
        "generate" => {
            let family = args.get(1).unwrap_or_else(|| usage());
            let size: usize = args
                .get(2)
                .and_then(|s| s.parse().ok())
                .unwrap_or_else(|| usage());
            let seed: u64 = flag_value(&args, "--seed")
                .and_then(|s| s.parse().ok())
                .unwrap_or(0);
            let p: f64 = flag_value(&args, "--p")
                .and_then(|s| s.parse().ok())
                .unwrap_or(0.1);
            let g = match family.as_str() {
                "fft" => fft_butterfly(size),
                "bhk" => bhk_hypercube(size),
                "matmul" => naive_matmul(size),
                "strassen" => strassen_matmul(size),
                "inner" => inner_product(size),
                "diamond" => diamond_dag(size, size),
                "er" => erdos_renyi_dag(size, p, seed),
                _ => usage(),
            };
            println!(
                "{}",
                serde_json::to_string(&g.to_edge_list()).expect("serializable")
            );
        }
        "bound" => {
            let m: usize = flag_value(&args, "--memory")
                .and_then(|s| s.parse().ok())
                .unwrap_or_else(|| usage());
            let p: usize = flag_value(&args, "--processors")
                .and_then(|s| s.parse().ok())
                .unwrap_or(1);
            let g = read_graph_from_stdin();
            let spectral = if p == 1 {
                spectral_bound(&g, m, &BoundOptions::default())
            } else {
                graphio::spectral::parallel_spectral_bound(&g, m, p, &BoundOptions::default())
            };
            match spectral {
                Ok(b) => println!(
                    "spectral lower bound: {:.2}  (best k = {}, n = {})",
                    b.bound,
                    b.best_k,
                    g.n()
                ),
                Err(e) => eprintln!("spectral bound failed: {e}"),
            }
            let sweep = if g.n() > 3000 {
                VertexSweep::Sample { count: 512, seed: 7 }
            } else {
                VertexSweep::All
            };
            let mc = convex_min_cut_bound(
                &g,
                m,
                &ConvexMinCutOptions {
                    sweep,
                    ..Default::default()
                },
            );
            println!(
                "convex min-cut bound: {}  (max wavefront = {})",
                mc.bound, mc.max_cut
            );
        }
        "simulate" => {
            let m: usize = flag_value(&args, "--memory")
                .and_then(|s| s.parse().ok())
                .unwrap_or_else(|| usage());
            let policy = match flag_value(&args, "--policy").as_deref() {
                None | Some("lru") => Policy::Lru,
                Some("fifo") => Policy::Fifo,
                Some("belady") => Policy::Belady,
                Some("random") => Policy::Random,
                Some(_) => usage(),
            };
            let g = read_graph_from_stdin();
            let order = match flag_value(&args, "--order").as_deref() {
                None | Some("natural") => natural_order(&g),
                Some("dfs") => dfs_order(&g),
                Some("bfs") => bfs_order(&g),
                Some(_) => usage(),
            };
            match simulate(&g, &order, m, policy, 0) {
                Ok(r) => println!(
                    "simulated I/O: {} ({} reads, {} writes, peak residency {})",
                    r.io(),
                    r.reads,
                    r.writes,
                    r.peak_resident
                ),
                Err(e) => {
                    eprintln!("simulation failed: {e}");
                    std::process::exit(1);
                }
            }
        }
        "dot" => {
            let g = read_graph_from_stdin();
            print!("{}", to_dot(&g, &DotOptions::default()));
        }
        _ => usage(),
    }
}
