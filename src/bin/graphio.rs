//! `graphio` command-line tool: generate computation graphs, compute I/O
//! lower bounds, run whole analysis sessions, serve them over HTTP, and
//! simulate executions from the shell.
//!
//! ```text
//! graphio generate fft 6                     # emit edge-list JSON on stdout
//! graphio bound --memory 4 < graph.json      # spectral + min-cut bounds
//! graphio analyze --memory-sweep 2,4,8,16 --threads 8 --json < graph.json
//! graphio simulate --memory 4 --policy lru < graph.json
//! graphio dot < graph.json                   # Graphviz rendering
//! graphio serve --port 7878 --workers 4      # the analysis service
//! graphio client analyze --url http://127.0.0.1:7878 \
//!     --memory-sweep 2,4,8 < graph.json      # remote analysis
//! graphio client analyze --url ... --memory-sweep 2,4,8 \
//!     --keep-alive --repeat 16 < graph.json  # one connection, 16 requests
//! graphio client batch --url ... --memory-sweep 2,4,8 \
//!     < graphs.ndjson                        # many graphs, one request
//! graphio precompute --store ./analysis-store \
//!     < graphs.ndjson                        # sweep a corpus to disk
//! graphio serve --port 7878 --store ./analysis-store  # boots hot
//! graphio store ls --store ./analysis-store  # one line per fingerprint
//! graphio store get --store ./analysis-store --fingerprint <hex> \
//!     | graphio analyze --memory-sweep 2,4,8 # stored graphs pipe back in
//! ```
//!
//! `analyze` is the cached path: one session computes each Laplacian
//! spectrum and the min-cut sweep once and serves every memory size,
//! theorem variant and processor count from the cache. `serve` keeps those
//! sessions alive *across* processes in a sharded LRU keyed by the graph's
//! structural fingerprint; `POST /analyze` responses are bit-identical to
//! `analyze --json` output for the same request.
//!
//! Every subcommand rejects flags it does not understand.

use graphio::baselines::convex_mincut::{convex_min_cut_bound, ConvexMinCutOptions};
use graphio::graph::dot::{to_dot, DotOptions};
use graphio::graph::generators::{
    bhk_hypercube, diamond_dag, erdos_renyi_dag, fft_butterfly, inner_product, naive_matmul,
    strassen_matmul,
};
use graphio::graph::topo::{bfs_order, dfs_order, natural_order};
use graphio::graph::{CompGraph, EdgeListGraph};
use graphio::linalg::stats::sparse_matvec_count;
use graphio::pebble::{simulate, Policy};
use graphio::router::{serve_router, RouterConfig};
use graphio::service::analysis::{analysis_body, analyze_rows, validate_memories, AnalyzeSpec};
use graphio::service::cache::CacheConfig;
use graphio::service::{
    client, loadgen, serve, PersistenceConfig, ServiceConfig, SlowLogConfig, SlowLogTarget,
};
use graphio::spectral::{BoundOptions, OwnedAnalyzer};
use graphio::store::{
    canonical_edge_list, decode_session, load_session, save_session, warm_session, Store,
    StoreConfig,
};
use std::collections::HashMap;
use std::io::Read;

/// Route every allocation through the counting wrapper so `serve`,
/// `router` and `cluster` can attribute bytes to the active phase
/// (`alloc_bytes`/`allocs` in trace records, per-phase counters on
/// `/metrics`). Attribution is off until the server flips the switch, so
/// offline subcommands pay one relaxed load per allocation.
#[global_allocator]
static COUNTING_ALLOC: graphio::obs::CountingAlloc = graphio::obs::CountingAlloc;

fn usage() -> ! {
    eprintln!(
        "usage:\n  graphio generate <family> <size> [--p <prob>] [--seed <s>]\n  \
         graphio bound --memory <M> [--processors <p>] [--threads <N>] < graph.json\n  \
         graphio analyze --memory-sweep <M1,M2,...> [--processors <p>] [--threads <N>] [--simd off|strict|fast] [--scale-tier auto|dense|sparse|huge] [--no-sim] [--compose] [--json] < graph.json\n  \
         graphio simulate --memory <M> [--policy lru|fifo|belady|random] [--order natural|dfs|bfs] [--threads <N>] < graph.json\n  \
         graphio dot < graph.json\n  \
         graphio serve [--host <H>] [--port <P>] [--workers <W>] [--queue <Q>] [--cache-mb <B>] [--shards <S>] [--max-sessions <K>] [--threads <N>] [--simd <POLICY>] [--scale-tier <TIER>] [--idle-ms <T>] [--max-requests <R>] [--store <DIR>] [--store-mb <B>] [--slow-log-us <T>] [--slow-log-file <F>] [--slow-log-rotate-mb <M>] [--trace-store <DIR>]\n  \
         graphio client analyze --url <http://host:port> --memory-sweep <M1,...> [--processors <p>] [--no-sim] [--keep-alive] [--repeat <N>] [--json] < graph.json\n  \
         graphio client batch --url <http://host:port> --memory-sweep <M1,...> [--processors <p>] [--no-sim] < graphs.ndjson\n  \
         graphio client register --url <http://host:port> < graph.json\n  \
         graphio client stats|health --url <http://host:port>\n  \
         graphio router --backends <host:port,host:port,...> [--listen <H:P>] [--replicas <K>] [--workers <W>] [--queue <Q>] [--health-ms <T>] [--slow-log-us <T>] [--slow-log-file <F>] [--slow-log-rotate-mb <M>]\n  \
         graphio cluster [--backends <N>] [--listen <H:P>] [--replicas <K>] [--workers <W>]\n  \
         graphio loadgen --url <http://host:port> [--rps <R>] [--duration <S>] [--conns <C>] [--path <P>] [--body <FILE.ndjson: one body per line, cycled>] [--json]\n  \
         graphio loadgen --seed-bench [--out <FILE>]\n  \
         graphio trace <id> [--server <http://host:port>]\n  \
         graphio traces [--slowest <K>] [--server <http://host:port>]\n  \
         graphio profile --server <http://host:port> [--seconds <S>] [--flamegraph <FILE>]\n  \
         graphio precompute --store <DIR> [--store-mb <B>] [--threads <N>] [--jobs <J>] < graphs.ndjson\n  \
         graphio store stat|ls|compact|export --store <DIR>\n  \
         graphio store get --store <DIR> --fingerprint <HEX>\n\n\
         families: fft, bhk, matmul, strassen, inner, diamond, er"
    );
    std::process::exit(2)
}

/// Parsed arguments of one subcommand: every flag checked against an
/// allowlist so typos fail loudly instead of being silently ignored.
/// Every error path names both the offending flag *and* the subcommand,
/// so `error: ... for --threads in \`graphio analyze\`` is greppable from
/// any shell transcript.
struct Parsed {
    cmd: String,
    positional: Vec<String>,
    flags: HashMap<String, String>,
}

impl Parsed {
    fn flag(&self, name: &str) -> Option<&str> {
        self.flags.get(name).map(String::as_str)
    }

    fn has(&self, name: &str) -> bool {
        self.flags.contains_key(name)
    }

    fn parse_flag<T: std::str::FromStr>(&self, name: &str) -> Option<T> {
        self.flag(name).map(|raw| {
            raw.parse().unwrap_or_else(|_| {
                eprintln!(
                    "error: invalid value {raw:?} for {name} in `graphio {}`",
                    self.cmd
                );
                usage()
            })
        })
    }
}

/// Splits `args` into positionals and flags, rejecting any flag not named
/// in `value_flags` (which take one value) or `bool_flags`.
fn parse_args(cmd: &str, args: &[String], value_flags: &[&str], bool_flags: &[&str]) -> Parsed {
    let mut positional = Vec::new();
    let mut flags = HashMap::new();
    let mut i = 0;
    while i < args.len() {
        let a = &args[i];
        if a.starts_with("--") {
            if bool_flags.contains(&a.as_str()) {
                flags.insert(a.clone(), String::new());
            } else if value_flags.contains(&a.as_str()) {
                let Some(value) = args.get(i + 1) else {
                    eprintln!("error: flag {a} expects a value in `graphio {cmd}`");
                    usage()
                };
                flags.insert(a.clone(), value.clone());
                i += 1;
            } else {
                eprintln!("error: unknown flag {a} for `graphio {cmd}`");
                usage()
            }
        } else {
            positional.push(a.clone());
        }
        i += 1;
    }
    Parsed {
        cmd: cmd.to_string(),
        positional,
        flags,
    }
}

fn read_graph_from_stdin() -> CompGraph {
    let mut buf = String::new();
    std::io::stdin()
        .read_to_string(&mut buf)
        .unwrap_or_else(|e| {
            eprintln!("error reading stdin: {e}");
            std::process::exit(1);
        });
    parse_graph(&buf)
}

fn parse_graph(json: &str) -> CompGraph {
    let el = EdgeListGraph::from_json(json).unwrap_or_else(|e| {
        eprintln!("error parsing graph JSON: {e}");
        std::process::exit(1);
    });
    CompGraph::try_from(el).unwrap_or_else(|e| {
        eprintln!("invalid graph: {e}");
        std::process::exit(1);
    })
}

/// Applies `--threads N` to the process-global linalg knob.
fn apply_threads(parsed: &Parsed) {
    if let Some(threads) = parsed.parse_flag::<usize>("--threads") {
        graphio::linalg::set_threads(threads);
    }
}

/// Applies `--simd off|strict|fast` and `--scale-tier auto|dense|sparse|huge`
/// to their process-global knobs, with the standard flag-AND-subcommand
/// error wording on anything unrecognized.
fn apply_kernel_knobs(parsed: &Parsed) {
    if let Some(raw) = parsed.flag("--simd") {
        match graphio::linalg::SimdPolicy::parse(raw) {
            Some(policy) => graphio::linalg::simd::set_policy(policy),
            None => {
                eprintln!(
                    "error: invalid value {raw:?} for --simd in `graphio {}`",
                    parsed.cmd
                );
                usage()
            }
        }
    }
    if let Some(raw) = parsed.flag("--scale-tier") {
        match graphio::spectral::ScaleTier::parse(raw) {
            Some(tier) => graphio::spectral::set_scale_tier(tier),
            None => {
                eprintln!(
                    "error: invalid value {raw:?} for --scale-tier in `graphio {}`",
                    parsed.cmd
                );
                usage()
            }
        }
    }
}

/// Parses and validates a `--memory-sweep` list, printing warnings for
/// deduplicated entries and exiting on invalid ones.
fn parse_sweep(cmd: &str, raw: &str) -> Vec<usize> {
    let parsed: Vec<usize> = raw
        .split(',')
        .map(|s| {
            s.trim().parse().unwrap_or_else(|_| {
                eprintln!("error: invalid memory size {s:?} for --memory-sweep in `graphio {cmd}`");
                usage()
            })
        })
        .collect();
    match validate_memories(&parsed) {
        Ok((memories, warnings)) => {
            for w in warnings {
                eprintln!("warning: {w}");
            }
            memories
        }
        Err(msg) => {
            eprintln!("error: {msg} (--memory-sweep in `graphio {cmd}`)");
            usage()
        }
    }
}

/// Writes bulk output to stdout. A broken pipe (`generate ... | head`, or
/// a downstream command that rejected its flags) is a normal way for the
/// reader to hang up, so it exits 0 quietly instead of panicking; any
/// other write failure (e.g. a full disk) is a real error and exits 1.
fn write_stdout(s: &str) {
    use std::io::Write as _;
    let mut out = std::io::stdout().lock();
    if let Err(e) = out.write_all(s.as_bytes()).and_then(|()| out.flush()) {
        if e.kind() == std::io::ErrorKind::BrokenPipe {
            std::process::exit(0);
        }
        eprintln!("error writing to stdout: {e}");
        std::process::exit(1);
    }
}

fn mincut_options(n: usize) -> ConvexMinCutOptions {
    // Shared size-scaled schedule (same source of truth as the bench
    // harness and the service).
    ConvexMinCutOptions::for_graph_size(n)
}

fn cmd_generate(args: &[String]) {
    let parsed = parse_args("generate", args, &["--p", "--seed"], &[]);
    let [family, size] = parsed.positional.as_slice() else {
        usage()
    };
    let size: usize = size.parse().unwrap_or_else(|_| {
        eprintln!("error: invalid size {size:?} for `graphio generate`");
        usage()
    });
    let seed: u64 = parsed.parse_flag("--seed").unwrap_or(0);
    let p: f64 = parsed.parse_flag("--p").unwrap_or(0.1);
    let g = match family.as_str() {
        "fft" => fft_butterfly(size),
        "bhk" => bhk_hypercube(size),
        "matmul" => naive_matmul(size),
        "strassen" => strassen_matmul(size),
        "inner" => inner_product(size),
        "diamond" => diamond_dag(size, size),
        "er" => erdos_renyi_dag(size, p, seed),
        _ => usage(),
    };
    write_stdout(&g.to_edge_list().to_json());
    write_stdout("\n");
}

fn cmd_bound(args: &[String]) {
    let parsed = parse_args(
        "bound",
        args,
        &["--memory", "--processors", "--threads"],
        &[],
    );
    let m: usize = parsed.parse_flag("--memory").unwrap_or_else(|| usage());
    let p: usize = parsed.parse_flag("--processors").unwrap_or(1);
    apply_threads(&parsed);
    let g = read_graph_from_stdin();
    // The CLI shares the bench harness's size-scaled tuning schedule
    // (BoundOptions::for_graph_size).
    let opts = BoundOptions::for_graph_size(g.n());
    let analyzer = OwnedAnalyzer::from_graph(g);
    let spectral = if p == 1 {
        analyzer.bound(m, &opts)
    } else {
        analyzer.parallel_bound(m, p, &opts)
    };
    match spectral {
        Ok(b) => println!(
            "spectral lower bound: {:.2}  (best k = {}, n = {})",
            b.bound,
            b.best_k,
            analyzer.graph().n()
        ),
        Err(e) => eprintln!("spectral bound failed: {e}"),
    }
    let g = analyzer.graph();
    let mc = convex_min_cut_bound(g, m, &mincut_options(g.n()));
    println!(
        "convex min-cut bound: {}  (max wavefront = {})",
        mc.bound, mc.max_cut
    );
}

fn cmd_analyze(args: &[String]) {
    let parsed = parse_args(
        "analyze",
        args,
        &[
            "--memory-sweep",
            "--processors",
            "--threads",
            "--simd",
            "--scale-tier",
        ],
        &["--no-sim", "--json", "--compose"],
    );
    let memories = parse_sweep(
        &parsed.cmd,
        parsed.flag("--memory-sweep").unwrap_or_else(|| usage()),
    );
    let processors: usize = parsed.parse_flag("--processors").unwrap_or(1);
    apply_threads(&parsed);
    apply_kernel_knobs(&parsed);
    let want_json = parsed.has("--json");
    let spec = AnalyzeSpec {
        memories,
        processors,
        no_sim: parsed.has("--no-sim"),
        compose: parsed.has("--compose"),
    };
    if spec.compose && spec.processors > 1 {
        eprintln!("error: compose mode does not support processors>1");
        std::process::exit(2);
    }

    let analyzer = OwnedAnalyzer::from_graph(read_graph_from_stdin());
    let matvecs_before = sparse_matvec_count();

    if want_json {
        // The exact bytes `POST /analyze` serves for the same request
        // (property-tested in crates/service/tests).
        write_stdout(&analysis_body(&analyzer, &spec));
        return;
    }

    if spec.compose {
        cmd_analyze_compose(&analyzer, &spec, matvecs_before);
        return;
    }

    let rows = analyze_rows(&analyzer, &spec);
    let g = analyzer.graph();
    let stats = analyzer.stats();
    let matvecs = sparse_matvec_count() - matvecs_before;
    println!(
        "analysis of graph: n = {}, edges = {}, h = {}, threads = {}",
        g.n(),
        g.num_edges(),
        BoundOptions::for_graph_size(g.n()).h,
        graphio::linalg::threads::effective_threads(),
    );
    let fmt_opt = |v: Option<f64>| v.map_or("-".to_string(), |b| format!("{b:.1}"));
    println!(
        "{:>8} {:>14} {:>8} {:>14} {:>14} {:>10} {:>11}",
        "M", "thm4", "best_k", "thm5", "thm6", "mincut", "sim_upper"
    );
    for r in &rows {
        println!(
            "{:>8} {:>14} {:>8} {:>14} {:>14} {:>10} {:>11}",
            r.memory,
            fmt_opt(r.thm4.map(|(b, _)| b)),
            r.thm4.map_or("-".to_string(), |(_, k)| k.to_string()),
            fmt_opt(r.thm5),
            fmt_opt(r.thm6),
            r.mincut,
            r.sim_upper.map_or("-".to_string(), |s| s.to_string()),
        );
    }
    println!(
        "eigensolves: {} ({} cache hits), sparse mat-vecs: {}, min-cut sweeps: {}",
        stats.spectrum_misses, stats.spectrum_hits, matvecs, stats.mincut_misses,
    );
}

/// The human-readable rendering of a compose-mode analysis (`--compose`
/// without `--json`): decomposition summary, then the composed sweep.
fn cmd_analyze_compose(analyzer: &OwnedAnalyzer, spec: &AnalyzeSpec, matvecs_before: u64) {
    use graphio::service::analysis::{compose_parts, compose_plan_for};
    use graphio::spectral::{any_estimated, composed_bound, composed_max_cut, LaplacianKind};

    let plan = compose_plan_for(analyzer);
    let parts = compose_parts(&plan);
    let g = analyzer.graph();
    let d = &plan.decomposition;
    let distinct: std::collections::HashSet<_> = plan.fingerprints.iter().collect();
    println!(
        "compose analysis: n = {}, edges = {}, components = {} ({} distinct), \
         target = {}, cut edges = {}, invariant = {}{}",
        g.n(),
        g.num_edges(),
        d.components.len(),
        distinct.len(),
        d.target,
        d.cut_edges,
        d.invariant,
        if any_estimated(&parts) {
            " [ESTIMATE: ritz_sweep component]"
        } else {
            ""
        },
    );
    let order = if spec.no_sim {
        Vec::new()
    } else {
        natural_order(g)
    };
    println!(
        "{:>8} {:>14} {:>9} {:>14} {:>10} {:>11}",
        "M", "thm4", "segments", "thm5", "mincut", "sim_upper"
    );
    for &m in &spec.memories {
        let thm4 = composed_bound(&parts, LaplacianKind::Normalized, m);
        let thm5 = composed_bound(&parts, LaplacianKind::Unnormalized, m);
        let mincut = 2 * composed_max_cut(&parts).saturating_sub(m as u64);
        let sim = (!spec.no_sim)
            .then(|| {
                [Policy::Lru, Policy::Belady]
                    .iter()
                    .filter_map(|&p| simulate(g, &order, m, p, 0).ok().map(|r| r.io()))
                    .min()
            })
            .flatten();
        println!(
            "{:>8} {:>14.1} {:>9} {:>14.1} {:>10} {:>11}",
            m,
            thm4.bound,
            thm4.segments,
            thm5.bound,
            mincut,
            sim.map_or("-".to_string(), |s| s.to_string()),
        );
    }
    println!(
        "component eigensolves: {} distinct sessions, sparse mat-vecs: {}",
        distinct.len(),
        sparse_matvec_count() - matvecs_before,
    );
}

fn cmd_simulate(args: &[String]) {
    let parsed = parse_args(
        "simulate",
        args,
        &["--memory", "--policy", "--order", "--threads"],
        &[],
    );
    let m: usize = parsed.parse_flag("--memory").unwrap_or_else(|| usage());
    apply_threads(&parsed);
    let policy = match parsed.flag("--policy") {
        None | Some("lru") => Policy::Lru,
        Some("fifo") => Policy::Fifo,
        Some("belady") => Policy::Belady,
        Some("random") => Policy::Random,
        Some(_) => usage(),
    };
    let g = read_graph_from_stdin();
    let order = match parsed.flag("--order") {
        None | Some("natural") => natural_order(&g),
        Some("dfs") => dfs_order(&g),
        Some("bfs") => bfs_order(&g),
        Some(_) => usage(),
    };
    match simulate(&g, &order, m, policy, 0) {
        Ok(r) => println!(
            "simulated I/O: {} ({} reads, {} writes, peak residency {})",
            r.io(),
            r.reads,
            r.writes,
            r.peak_resident
        ),
        Err(e) => {
            eprintln!("simulation failed: {e}");
            std::process::exit(1);
        }
    }
}

fn cmd_serve(args: &[String]) {
    let parsed = parse_args(
        "serve",
        args,
        &[
            "--host",
            "--port",
            "--workers",
            "--queue",
            "--cache-mb",
            "--shards",
            "--max-sessions",
            "--threads",
            "--idle-ms",
            "--max-requests",
            "--store",
            "--store-mb",
            "--simd",
            "--scale-tier",
            "--slow-log-us",
            "--slow-log-file",
            "--slow-log-rotate-mb",
            "--trace-store",
        ],
        &[],
    );
    if !parsed.positional.is_empty() {
        usage();
    }
    apply_kernel_knobs(&parsed);
    let defaults = ServiceConfig::default();
    let cache_defaults = CacheConfig::default();
    let config = ServiceConfig {
        host: parsed
            .flag("--host")
            .unwrap_or(defaults.host.as_str())
            .to_string(),
        port: parsed.parse_flag("--port").unwrap_or(7878),
        workers: parsed.parse_flag("--workers").unwrap_or(defaults.workers),
        queue_capacity: parsed
            .parse_flag("--queue")
            .unwrap_or(defaults.queue_capacity),
        idle_timeout: parsed
            .parse_flag::<u64>("--idle-ms")
            .map_or(defaults.idle_timeout, std::time::Duration::from_millis),
        max_requests_per_connection: parsed
            .parse_flag("--max-requests")
            .unwrap_or(defaults.max_requests_per_connection),
        cache: CacheConfig {
            shards: parsed
                .parse_flag("--shards")
                .unwrap_or(cache_defaults.shards),
            max_sessions: parsed
                .parse_flag("--max-sessions")
                .unwrap_or(cache_defaults.max_sessions),
            max_bytes: parsed
                .parse_flag::<usize>("--cache-mb")
                .map_or(cache_defaults.max_bytes, |mb| mb.saturating_mul(1 << 20)),
        },
        store: parsed.flag("--store").map(|dir| PersistenceConfig {
            dir: dir.into(),
            store: store_config(&parsed),
        }),
        slow_log: slow_log_config(&parsed),
        trace_store: parsed.flag("--trace-store").map(Into::into),
    };
    if parsed.has("--store-mb") && config.store.is_none() {
        eprintln!("error: --store-mb requires --store in `graphio serve`");
        usage();
    }
    // Each worker runs its eigensolves through the linalg kernels, which
    // parallelize internally via the process-global thread knob; split
    // the machine across workers unless told otherwise.
    match parsed.parse_flag::<usize>("--threads") {
        Some(threads) => graphio::linalg::set_threads(threads),
        None => {
            let available = std::thread::available_parallelism().map_or(1, |p| p.get());
            graphio::linalg::set_threads((available / config.workers.max(1)).max(1));
        }
    }
    let server = serve(&config).unwrap_or_else(|e| {
        eprintln!("error: failed to start server: {e}");
        std::process::exit(1);
    });
    if let Some(stats) = server.store_stats() {
        println!(
            "store: {} record(s) in {} segment(s), {} bytes on disk",
            stats.records, stats.segments, stats.bytes_on_disk
        );
    }
    // Line-buffered and parsed by the CI driver — keep the format stable.
    println!("graphio service listening on {}", server.url());
    use std::io::Write as _;
    let _ = std::io::stdout().flush();
    server.join();
}

/// `--slow-log-us N [--slow-log-file F] [--slow-log-rotate-mb M]`, shared
/// by `serve`, `router` and `cluster`: any request whose wall time reaches
/// N microseconds dumps its phase tree as one JSON line (stderr by
/// default; threshold 0 logs every request). With a file target, M caps
/// the file size: on overflow it rotates to `<file>.1` and starts fresh.
fn slow_log_config(parsed: &Parsed) -> Option<SlowLogConfig> {
    let threshold = parsed.parse_flag::<u64>("--slow-log-us");
    if threshold.is_none() && parsed.has("--slow-log-file") {
        eprintln!(
            "error: --slow-log-file requires --slow-log-us in `graphio {}`",
            parsed.cmd
        );
        usage();
    }
    let rotate_bytes = parsed
        .parse_flag::<u64>("--slow-log-rotate-mb")
        .map(|mb| mb.saturating_mul(1 << 20));
    if rotate_bytes.is_some() && !parsed.has("--slow-log-file") {
        eprintln!(
            "error: --slow-log-rotate-mb requires --slow-log-file in `graphio {}`",
            parsed.cmd
        );
        usage();
    }
    threshold.map(|threshold_us| SlowLogConfig {
        threshold_us,
        target: parsed
            .flag("--slow-log-file")
            .map_or(SlowLogTarget::Stderr, |f| SlowLogTarget::File(f.into())),
        rotate_bytes,
    })
}

/// Store sizing shared by every subcommand that opens one
/// (`--store-mb` caps the on-disk byte budget).
fn store_config(parsed: &Parsed) -> StoreConfig {
    let defaults = StoreConfig::default();
    StoreConfig {
        max_bytes: parsed
            .parse_flag::<u64>("--store-mb")
            .map_or(defaults.max_bytes, |mb| mb.saturating_mul(1 << 20)),
        ..defaults
    }
}

/// Opens the store named by `--store` (required). Inspection commands
/// pass `read_only` — no writer lock, no filesystem mutation — so they
/// can point at a store a live `serve --store` is writing.
fn open_store(parsed: &Parsed, read_only: bool) -> Store {
    let dir = parsed.flag("--store").unwrap_or_else(|| {
        eprintln!(
            "error: --store <DIR> is required for `graphio {}`",
            parsed.cmd
        );
        usage()
    });
    let opened = if read_only {
        Store::open_read_only(dir, store_config(parsed))
    } else {
        Store::open(dir, store_config(parsed))
    };
    opened.unwrap_or_else(|e| {
        eprintln!("error: cannot open store {dir}: {e}");
        std::process::exit(1);
    })
}

/// `graphio store {stat,ls,get,compact,export}` — inspect and maintain a
/// persistent analysis store offline.
fn cmd_store(args: &[String]) {
    let Some((action, rest)) = args.split_first() else {
        usage()
    };
    let value_flags: &[&str] = match action.as_str() {
        "get" => &["--store", "--store-mb", "--fingerprint"],
        "stat" | "ls" | "compact" | "export" => &["--store", "--store-mb"],
        _ => usage(),
    };
    let parsed = parse_args(&format!("store {action}"), rest, value_flags, &[]);
    // Only `compact` mutates; everything else opens lock-free/read-only.
    let store = open_store(&parsed, action != "compact");

    /// The decoded document for `fp`, or `None` with a warning — bulk
    /// commands (`ls`, `export`) keep going past one bad record so a
    /// single undecodable entry (version skew, racing compaction) does
    /// not hide the healthy rest of the store.
    fn try_fetch(
        store: &Store,
        fp: graphio::graph::Fingerprint,
    ) -> Option<(Vec<u8>, graphio::store::StoredSession)> {
        match store.get(fp) {
            Ok(Some(doc)) => match decode_session(&doc) {
                Ok(session) => Some((doc, session)),
                Err(e) => {
                    eprintln!("warning: skipping undecodable record for {fp}: {e}");
                    None
                }
            },
            Ok(None) => None,
            Err(e) => {
                eprintln!("warning: skipping unreadable record for {fp}: {e}");
                None
            }
        }
    }

    match action.as_str() {
        "stat" => {
            let s = store.stats();
            let num = |v: u64| graphio::graph::json::JsonValue::Number(v as f64);
            let doc = graphio::graph::json::JsonValue::Object(vec![
                ("records".to_string(), num(s.records)),
                ("segments".to_string(), num(s.segments)),
                ("bytes_on_disk".to_string(), num(s.bytes_on_disk)),
                ("live_bytes".to_string(), num(s.live_bytes)),
                ("compactions".to_string(), num(s.compactions)),
            ]);
            write_stdout(&(doc.to_string() + "\n"));
        }
        "ls" => {
            let mut out = String::new();
            for fp in store.fingerprints() {
                let Some((doc, session)) = try_fetch(&store, fp) else {
                    continue;
                };
                out.push_str(&format!(
                    "{fp}\tn={}\tedges={}\tspectra={}\tcuts={}\tbytes={}\n",
                    session.graph.n(),
                    session.graph.num_edges(),
                    session.export.spectra.len(),
                    session.export.cuts.len(),
                    doc.len(),
                ));
            }
            write_stdout(&out);
        }
        "get" => {
            let hex = parsed.flag("--fingerprint").unwrap_or_else(|| usage());
            let Some(fp) = graphio::graph::Fingerprint::from_hex(hex) else {
                eprintln!("error: malformed fingerprint {hex:?} for `graphio store get`");
                usage()
            };
            // `get` asked for one specific record, so absence IS the
            // error (unlike the bulk commands above).
            let Some((_, session)) = try_fetch(&store, fp) else {
                eprintln!("error: no record for fingerprint {fp}");
                std::process::exit(1);
            };
            eprintln!(
                "fingerprint {fp}: n={}, edges={}, spectra={}, cuts={}",
                session.graph.n(),
                session.graph.num_edges(),
                session.export.spectra.len(),
                session.export.cuts.len(),
            );
            // The graph goes to stdout as ordinary edge-list JSON, so it
            // pipes straight back into `graphio analyze` / `bound` /
            // `dot` — in the codec's canonical edge order, so the
            // rebuilt graph reproduces parent order (and therefore
            // simulation bytes) exactly.
            write_stdout(&canonical_edge_list(&session.graph).to_json());
            write_stdout("\n");
        }
        "compact" => {
            let before = store.stats();
            if let Err(e) = store.compact() {
                eprintln!("error: compaction failed: {e}");
                std::process::exit(1);
            }
            let after = store.stats();
            println!(
                "compacted: {} -> {} bytes ({} record(s), {} segment(s))",
                before.bytes_on_disk, after.bytes_on_disk, after.records, after.segments
            );
        }
        "export" => {
            // NDJSON of stored graphs: the exact shape `graphio
            // precompute` consumes, so a store can be rebuilt or merged
            // elsewhere.
            let mut out = String::new();
            for fp in store.fingerprints() {
                let Some((_, session)) = try_fetch(&store, fp) else {
                    continue;
                };
                // Canonical edge order: see `store get` above.
                out.push_str(&canonical_edge_list(&session.graph).to_json());
                out.push('\n');
            }
            write_stdout(&out);
        }
        _ => usage(),
    }
}

/// What one corpus line came to. `Failed` aborts the run (exit 1) once
/// printing reaches it — in input order, so the reported line is the
/// same whichever worker hit it first.
enum PrecomputeOutcome {
    Fresh {
        fp: graphio::graph::Fingerprint,
        n: usize,
    },
    Skipped,
    Failed(String),
}

/// Parses one corpus line and warms + stores it unless the store already
/// holds a warm session for its fingerprint.
fn precompute_line(store: &Store, graph: CompGraph) -> PrecomputeOutcome {
    let fp = graphio::graph::fingerprint(&graph);
    // Already stored *and* warmed? Then this line is free.
    if let Ok(Some(existing)) = load_session(store, fp) {
        if !existing.export().is_empty() {
            return PrecomputeOutcome::Skipped;
        }
    }
    let n = graph.n();
    let analyzer = OwnedAnalyzer::from_graph(graph);
    if let Err(e) = warm_session(&analyzer) {
        return PrecomputeOutcome::Failed(format!("eigensolve failed: {e}"));
    }
    if let Err(e) = save_session(store, fp, &analyzer) {
        return PrecomputeOutcome::Failed(format!("store write failed: {e}"));
    }
    PrecomputeOutcome::Fresh { fp, n }
}

/// `graphio precompute` — sweep an NDJSON corpus of graphs into a store
/// offline, so a server started with `--store` boots hot: every corpus
/// graph's spectra and min-cut sweep are already on disk and the server
/// never eigensolves for them.
///
/// `--jobs N` warms up to N corpus lines concurrently (the store's own
/// locking serializes the appends). Reporting stays deterministic:
/// outcomes are collected per line and printed in input order, so the
/// progress lines — and which error gets reported when several lines are
/// bad — are identical at every job count.
fn cmd_precompute(args: &[String]) {
    let parsed = parse_args(
        "precompute",
        args,
        &["--store", "--store-mb", "--threads", "--jobs"],
        &[],
    );
    if !parsed.positional.is_empty() {
        usage();
    }
    apply_threads(&parsed);
    let jobs: usize = parsed.parse_flag("--jobs").unwrap_or(1).max(1);
    let store = open_store(&parsed, false);
    let input = read_stdin_to_string();

    // Phase 1 (sequential, cheap): parse every line, fingerprint it, and
    // mark duplicates of an earlier line as skips — so the fresh/skipped
    // counts cannot depend on which worker wins a race.
    let mut items: Vec<(usize, Option<CompGraph>, Option<PrecomputeOutcome>)> = Vec::new();
    let mut seen_fps = std::collections::HashSet::new();
    for (line_no, line) in input.lines().enumerate().map(|(i, l)| (i + 1, l.trim())) {
        if line.is_empty() {
            continue;
        }
        match graphio::graph::EdgeListGraph::from_json(line)
            .map_err(|e| format!("invalid graph JSON: {e}"))
            .and_then(|el| CompGraph::try_from(el).map_err(|e| format!("invalid graph: {e}")))
        {
            Ok(g) => {
                if seen_fps.insert(graphio::graph::fingerprint(&g)) {
                    items.push((line_no, Some(g), None));
                } else {
                    items.push((line_no, None, Some(PrecomputeOutcome::Skipped)));
                }
            }
            Err(msg) => items.push((line_no, None, Some(PrecomputeOutcome::Failed(msg)))),
        }
    }
    if items.is_empty() {
        eprintln!("error: `graphio precompute` expects one graph JSON per stdin line");
        std::process::exit(1);
    }

    // Phase 2 (parallel): warm + store, workers claiming lines off a
    // shared cursor.
    let outcomes: Vec<std::sync::Mutex<Option<PrecomputeOutcome>>> = items
        .iter_mut()
        .map(|(_, _, o)| std::sync::Mutex::new(o.take()))
        .collect();
    let cursor = std::sync::atomic::AtomicUsize::new(0);
    let store_ref = &store;
    // The graphs move out of `items` through per-slot mutexes so workers
    // can take them without cloning.
    let work: Vec<std::sync::Mutex<Option<CompGraph>>> = items
        .iter_mut()
        .map(|(_, g, _)| std::sync::Mutex::new(g.take()))
        .collect();
    std::thread::scope(|scope| {
        let work = &work;
        let cursor = &cursor;
        let outcomes = &outcomes;
        for _ in 0..jobs.min(work.len()) {
            scope.spawn(move || loop {
                let i = cursor.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                if i >= work.len() {
                    return;
                }
                let Some(graph) = work[i].lock().expect("work slot").take() else {
                    continue; // pre-resolved in phase 1
                };
                let outcome = precompute_line(store_ref, graph);
                *outcomes[i].lock().expect("outcome slot") = Some(outcome);
            });
        }
    });

    // Phase 3: print in input order; the first failed line (in input
    // order) aborts exactly like the sequential path did.
    let (mut fresh, mut skipped) = (0u64, 0u64);
    for ((line_no, _, _), outcome) in items.iter().zip(outcomes) {
        match outcome
            .into_inner()
            .expect("outcome lock")
            .expect("every line resolved")
        {
            PrecomputeOutcome::Fresh { fp, n } => {
                fresh += 1;
                eprintln!("line {line_no}: {fp} n={n} precomputed");
            }
            PrecomputeOutcome::Skipped => skipped += 1,
            PrecomputeOutcome::Failed(msg) => {
                eprintln!("error: stdin line {line_no}: {msg}");
                std::process::exit(1);
            }
        }
    }
    if let Err(e) = store.snapshot() {
        eprintln!("warning: snapshot failed: {e}");
    }
    eprintln!(
        "precomputed {fresh} graph(s) ({skipped} already stored) into {}",
        store.dir().display()
    );
}

/// Splits `host:port` (the `--listen` form). IPv6 listen addresses use
/// the usual `[::1]:port` bracket form.
fn parse_listen(cmd: &str, listen: &str) -> (String, u16) {
    let Some((host, port)) = listen.rsplit_once(':') else {
        eprintln!("error: --listen expects host:port in `graphio {cmd}`, got {listen:?}");
        usage()
    };
    let Ok(port) = port.parse::<u16>() else {
        eprintln!("error: invalid port {port:?} for --listen in `graphio {cmd}`");
        usage()
    };
    (host.trim_matches(['[', ']']).to_string(), port)
}

/// Builds a [`RouterConfig`] from shared router/cluster flags.
fn router_config(parsed: &Parsed, backends: Vec<String>) -> RouterConfig {
    let defaults = RouterConfig::over(Vec::new());
    let (host, port) = parse_listen(
        &parsed.cmd,
        parsed.flag("--listen").unwrap_or("127.0.0.1:7979"),
    );
    RouterConfig {
        host,
        port,
        backends,
        replicas: parsed.parse_flag("--replicas").unwrap_or(defaults.replicas),
        workers: parsed.parse_flag("--workers").unwrap_or(defaults.workers),
        queue_capacity: parsed
            .parse_flag("--queue")
            .unwrap_or(defaults.queue_capacity),
        health_interval: parsed
            .parse_flag::<u64>("--health-ms")
            .map_or(defaults.health_interval, std::time::Duration::from_millis),
        slow_log: slow_log_config(parsed),
        ..defaults
    }
}

/// `graphio router` — the fingerprint-affine cluster tier: a reverse
/// proxy fronting N `graphio serve` backends with consistent-hash
/// routing, scatter/gather batching, and failover (see DESIGN.md §8).
fn cmd_router(args: &[String]) {
    let parsed = parse_args(
        "router",
        args,
        &[
            "--backends",
            "--listen",
            "--replicas",
            "--workers",
            "--queue",
            "--health-ms",
            "--slow-log-us",
            "--slow-log-file",
            "--slow-log-rotate-mb",
        ],
        &[],
    );
    if !parsed.positional.is_empty() {
        usage();
    }
    let backends: Vec<String> = parsed
        .flag("--backends")
        .unwrap_or_else(|| usage())
        .split(',')
        .map(|s| s.trim().to_string())
        .filter(|s| !s.is_empty())
        .collect();
    if backends.is_empty() {
        eprintln!("error: --backends expects at least one host:port in `graphio router`");
        usage();
    }
    let router = serve_router(&router_config(&parsed, backends)).unwrap_or_else(|e| {
        eprintln!("error: failed to start router: {e}");
        std::process::exit(1);
    });
    // Line-buffered and parsed by the CI driver — keep the format stable.
    println!("graphio router listening on {}", router.url());
    use std::io::Write as _;
    let _ = std::io::stdout().flush();
    router.join();
}

/// `graphio cluster` — a test/demo helper: spawn N `graphio serve`
/// children on ephemeral ports and front them with an in-process router.
/// Prints one `cluster backend I: URL pid=P` line per child (so a test
/// harness can `kill -9` one mid-load) and then the standard router
/// listening line. The children are plain child processes: killing the
/// cluster process orphans them, so harnesses should kill the printed
/// pids too.
fn cmd_cluster(args: &[String]) {
    let parsed = parse_args(
        "cluster",
        args,
        &[
            "--backends",
            "--listen",
            "--replicas",
            "--workers",
            "--slow-log-us",
            "--slow-log-file",
            "--slow-log-rotate-mb",
        ],
        &[],
    );
    if !parsed.positional.is_empty() {
        usage();
    }
    let n: usize = parsed.parse_flag("--backends").unwrap_or(3).max(1);
    let workers: usize = parsed.parse_flag("--workers").unwrap_or(2);
    let exe = std::env::current_exe().unwrap_or_else(|e| {
        eprintln!("error: cannot locate own binary: {e}");
        std::process::exit(1);
    });
    let mut children = Vec::new();
    let mut addrs = Vec::new();
    for i in 0..n {
        let mut child = std::process::Command::new(&exe)
            .args(["serve", "--port", "0", "--workers", &workers.to_string()])
            .stdout(std::process::Stdio::piped())
            .spawn()
            .unwrap_or_else(|e| {
                eprintln!("error: failed to spawn backend {i}: {e}");
                std::process::exit(1);
            });
        let stdout = child.stdout.take().expect("stdout piped");
        let mut reader = std::io::BufReader::new(stdout);
        let url = loop {
            let mut line = String::new();
            use std::io::BufRead as _;
            let read = reader.read_line(&mut line).unwrap_or(0);
            if read == 0 {
                eprintln!("error: backend {i} exited before listening");
                std::process::exit(1);
            }
            if let Some(url) = line.trim().strip_prefix("graphio service listening on ") {
                break url.to_string();
            }
        };
        let addr = url.strip_prefix("http://").unwrap_or(&url).to_string();
        println!("cluster backend {i}: {url} pid={}", child.id());
        addrs.push(addr);
        children.push(child);
    }
    let router = match serve_router(&router_config(&parsed, addrs)) {
        Ok(router) => router,
        Err(e) => {
            eprintln!("error: failed to start router: {e}");
            for mut child in children {
                let _ = child.kill();
            }
            std::process::exit(1);
        }
    };
    println!("graphio router listening on {}", router.url());
    use std::io::Write as _;
    let _ = std::io::stdout().flush();
    router.join();
    for mut child in children {
        let _ = child.kill();
        let _ = child.wait();
    }
}

/// `graphio loadgen` — the open-loop load generator (see
/// [`graphio::service::loadgen`] for the coordinated-omission argument).
/// Prints one JSON report line. `--seed-bench` instead runs the standard
/// benchmark matrix — single node vs. a 3-backend routed cluster, cache
/// hit vs. cold, three request rates — against in-process servers and
/// writes `BENCH_service.json`.
fn cmd_loadgen(args: &[String]) {
    let parsed = parse_args(
        "loadgen",
        args,
        &[
            "--url",
            "--path",
            "--rps",
            "--duration",
            "--conns",
            "--body",
            "--out",
        ],
        &["--seed-bench", "--json"],
    );
    if !parsed.positional.is_empty() {
        usage();
    }
    if parsed.has("--seed-bench") {
        run_seed_bench(parsed.flag("--out").unwrap_or("BENCH_service.json"));
        return;
    }
    let url = parsed.flag("--url").unwrap_or_else(|| usage());
    let rps: f64 = parsed.parse_flag("--rps").unwrap_or(100.0);
    let duration =
        std::time::Duration::from_secs_f64(parsed.parse_flag::<f64>("--duration").unwrap_or(5.0));
    let mut config = loadgen::LoadgenConfig::at(url, rps, duration);
    config.conns = parsed.parse_flag("--conns").unwrap_or(config.conns);
    if let Some(path) = parsed.flag("--path") {
        config.path = path.to_string();
    }
    if let Some(file) = parsed.flag("--body") {
        let text = std::fs::read_to_string(file).unwrap_or_else(|e| {
            eprintln!("error: cannot read --body {file}: {e}");
            std::process::exit(1);
        });
        // NDJSON: every non-empty line is one request body in the cycled
        // pool, so a captured request log (e.g. the per-entry bodies of a
        // `POST /batch`) replays as a mixed workload. A single-line file
        // keeps the old one-body behavior.
        config.bodies = text
            .lines()
            .map(str::trim)
            .filter(|line| !line.is_empty())
            .map(str::to_string)
            .collect();
        if config.bodies.is_empty() {
            eprintln!("error: --body {file} contains no request bodies");
            std::process::exit(1);
        }
    } else if config.path.starts_with("/analyze") || config.path.starts_with("/graphs") {
        // Default body: a small FFT analysis over a modest sweep — the
        // cache-hit steady state every repeat measures.
        config.bodies = vec![analyze_body_json(&fft_butterfly(5), &[4, 8, 16])];
    }
    if config.bodies.is_empty() {
        config.method = "GET".to_string();
    }
    let report = loadgen::run(&config).unwrap_or_else(|e| {
        eprintln!("error: {e}");
        std::process::exit(1);
    });
    // Humans get the readable summary; `--json` keeps the stable
    // machine-readable line (what the CI driver greps).
    if parsed.has("--json") {
        write_stdout(&(report.to_json() + "\n"));
    } else {
        write_stdout(&(report.to_human() + "\n"));
    }
}

/// An `/analyze` request body for `g` over `memories`.
fn analyze_body_json(g: &CompGraph, memories: &[usize]) -> String {
    let sweep = memories
        .iter()
        .map(usize::to_string)
        .collect::<Vec<_>>()
        .join(",");
    format!(
        "{{\"graph\":{},\"memories\":[{sweep}]}}",
        g.to_edge_list().to_json()
    )
}

/// The `--seed-bench` matrix: {single node, 3-backend router} ×
/// {cache hit, cold} × three arrival rates, 2 s each, in-process (the
/// numbers include no network beyond loopback). "Hit" replays one
/// pre-warmed graph; "cold" cycles a pool of distinct Erdős–Rényi graphs
/// sized past the request count, so every request is a session miss.
fn run_seed_bench(out: &str) {
    const RATES: [f64; 3] = [50.0, 200.0, 800.0];
    const DURATION: std::time::Duration = std::time::Duration::from_secs(2);
    const CONNS: usize = 8;
    let hit_body = analyze_body_json(&fft_butterfly(5), &[4, 8, 16]);
    let mut cold_seed = 0u64;
    let mut runs: Vec<String> = Vec::new();

    // Workers ≥ CONNS everywhere: each keep-alive connection pins a
    // pooled worker, so fewer workers than load-generator connections
    // benchmarks the accept queue, not the request path.
    let single = serve(&ServiceConfig {
        workers: CONNS,
        ..ServiceConfig::default()
    })
    .unwrap_or_else(|e| {
        eprintln!("error: failed to start bench server: {e}");
        std::process::exit(1);
    });
    bench_topology(
        "single",
        &single.url(),
        &hit_body,
        &mut cold_seed,
        &mut runs,
    );
    single.shutdown();

    let backends: Vec<_> = (0..3)
        .map(|_| {
            serve(&ServiceConfig {
                workers: CONNS,
                ..ServiceConfig::default()
            })
            .unwrap_or_else(|e| {
                eprintln!("error: failed to start bench backend: {e}");
                std::process::exit(1);
            })
        })
        .collect();
    let addrs = backends.iter().map(|b| b.addr().to_string()).collect();
    let router = serve_router(&RouterConfig {
        workers: CONNS,
        ..RouterConfig::over(addrs)
    })
    .unwrap_or_else(|e| {
        eprintln!("error: failed to start bench router: {e}");
        std::process::exit(1);
    });
    bench_topology(
        "router3",
        &router.url(),
        &hit_body,
        &mut cold_seed,
        &mut runs,
    );
    router.shutdown();
    for backend in &backends {
        backend.shutdown();
    }

    // Overhead of the continuous-profiling layer on the steady cache-hit
    // path: the single/hit workload at the top rate, once with allocation
    // attribution forced off and no sampler running, once with
    // attribution live AND a `/debug/profile` scrape spanning the whole
    // loadgen window. The acceptance bar is a ≤ 2% p50 regression.
    // CONNS + 1 workers: the scrape handler IS the sampler, so it pins a
    // pooled worker for the entire window — without the spare, the bench
    // measures one starved loadgen connection, not profiler overhead.
    let single = serve(&ServiceConfig {
        workers: CONNS + 1,
        ..ServiceConfig::default()
    })
    .unwrap_or_else(|e| {
        eprintln!("error: failed to start overhead server: {e}");
        std::process::exit(1);
    });
    let warm = client::request("POST", &single.url(), "/analyze", Some(&hit_body));
    assert!(
        matches!(&warm, Ok(r) if r.status == 200),
        "seed-bench overhead warm-up analyze failed"
    );
    let mut config = loadgen::LoadgenConfig::at(&single.url(), RATES[2], DURATION);
    config.conns = CONNS;
    config.bodies = vec![hit_body.clone()];
    let run_or_die = |config: &loadgen::LoadgenConfig| {
        loadgen::run(config).unwrap_or_else(|e| {
            eprintln!("error: {e}");
            std::process::exit(1);
        })
    };
    graphio::obs::alloc::set_enabled(false);
    let baseline = run_or_die(&config);
    graphio::obs::alloc::set_enabled(true);
    let scrape_url = single.url();
    let scrape = std::thread::spawn(move || {
        client::request(
            "GET",
            &scrape_url,
            &format!("/debug/profile?seconds={}", DURATION.as_secs()),
            None,
        )
    });
    let profiled = run_or_die(&config);
    let scraped = scrape.join().expect("profile scrape thread");
    assert!(
        matches!(&scraped, Ok(r) if r.status == 200),
        "seed-bench overhead profile scrape failed"
    );
    single.shutdown();
    let mean = |s: &graphio::obs::hist::HistSnapshot| s.sum as f64 / s.count.max(1) as f64;
    let overhead = format!(
        concat!(
            "{{\"workload\":\"single/hit @{} rps\",",
            "\"profiling_off\":{{\"p50_us\":{},\"mean_us\":{:.1}}},",
            "\"profiling_on\":{{\"p50_us\":{},\"mean_us\":{:.1}}},",
            "\"note\":\"off: alloc attribution disabled, sampler idle; ",
            "on: attribution live + a /debug/profile scrape spanning the run\"}}"
        ),
        RATES[2],
        baseline.latency.p50(),
        mean(&baseline.latency),
        profiled.latency.p50(),
        mean(&profiled.latency),
    );

    let doc = format!(
        concat!(
            "{{\"schema\":\"graphio-bench-service-v2\",",
            "\"hit_graph\":\"fft_butterfly(5)\",",
            "\"cold_graphs\":\"erdos_renyi_dag(24, 0.15, seed) per request\",",
            "\"memories\":[4,8,16],\"duration_s\":{},\"conns\":{},",
            "\"latency_note\":\"microseconds from scheduled (open-loop) arrival\",",
            "\"profiling_overhead\":{},",
            "\"runs\":[\n{}\n]}}\n"
        ),
        DURATION.as_secs(),
        CONNS,
        overhead,
        runs.join(",\n"),
    );
    std::fs::write(out, &doc).unwrap_or_else(|e| {
        eprintln!("error: cannot write {out}: {e}");
        std::process::exit(1);
    });
    eprintln!("seed-bench: wrote {} runs to {out}", runs.len());

    fn bench_topology(
        topology: &str,
        url: &str,
        hit_body: &str,
        cold_seed: &mut u64,
        runs: &mut Vec<String>,
    ) {
        // Warm the hit session (through the router this also lands it on
        // the owner backend, so routed hits stay hits).
        let warm = client::request("POST", url, "/analyze", Some(hit_body));
        assert!(
            matches!(&warm, Ok(r) if r.status == 200),
            "seed-bench warm-up analyze failed against {url}"
        );
        for rate in RATES {
            let mut config = loadgen::LoadgenConfig::at(url, rate, DURATION);
            config.conns = CONNS;
            config.bodies = vec![hit_body.to_string()];
            record(topology, "hit", &config, runs);
            // One distinct graph per scheduled arrival: all-miss load.
            let arrivals = (rate * DURATION.as_secs_f64()).ceil() as usize + 1;
            config.bodies = (0..arrivals)
                .map(|_| {
                    *cold_seed += 1;
                    analyze_body_json(&erdos_renyi_dag(24, 0.15, *cold_seed), &[4, 8, 16])
                })
                .collect();
            record(topology, "cold", &config, runs);
        }
    }

    fn record(
        topology: &str,
        cache: &str,
        config: &loadgen::LoadgenConfig,
        runs: &mut Vec<String>,
    ) {
        let report = loadgen::run(config).unwrap_or_else(|e| {
            eprintln!("error: {e}");
            std::process::exit(1);
        });
        assert_eq!(
            report.errors, 0,
            "seed-bench run {topology}/{cache} @{} rps saw errors",
            config.rps
        );
        // Tag the report with the matrix coordinates (splice into the
        // report object, which starts with '{').
        runs.push(format!(
            "{{\"topology\":\"{topology}\",\"cache\":\"{cache}\",{}",
            &report.to_json()[1..]
        ));
    }
}

fn read_stdin_to_string() -> String {
    let mut buf = String::new();
    std::io::stdin()
        .read_to_string(&mut buf)
        .unwrap_or_else(|e| {
            eprintln!("error reading stdin: {e}");
            std::process::exit(1);
        });
    buf
}

fn cmd_client(args: &[String]) {
    let Some((action, rest)) = args.split_first() else {
        usage()
    };
    // The allowlist depends on the action: `client stats --memory-sweep`
    // is as much a user error as any other unknown flag.
    let (value_flags, bool_flags): (&[&str], &[&str]) = match action.as_str() {
        "analyze" => (
            &["--url", "--memory-sweep", "--processors", "--repeat"],
            &["--no-sim", "--keep-alive", "--json"],
        ),
        "batch" => (&["--url", "--memory-sweep", "--processors"], &["--no-sim"]),
        "register" | "stats" | "health" => (&["--url"], &[]),
        _ => usage(),
    };
    let parsed = parse_args(&format!("client {action}"), rest, value_flags, bool_flags);
    let url = parsed.flag("--url").unwrap_or_else(|| usage());

    // For `client batch`: stdin line number of each submitted entry, so a
    // per-index rejection (`graphs[i]: ...`) can name the offending line
    // (blank lines are skipped, so index and line number diverge).
    let mut batch_lines: Option<Vec<usize>> = None;
    let response = match action.as_str() {
        "analyze" => {
            let memories = parse_sweep(
                &parsed.cmd,
                parsed.flag("--memory-sweep").unwrap_or_else(|| usage()),
            );
            let processors: usize = parsed.parse_flag("--processors").unwrap_or(1);
            let no_sim = parsed.has("--no-sim");
            let repeat: u64 = parsed.parse_flag("--repeat").unwrap_or(1).max(1);
            let graph_json = read_stdin_to_string();
            if parsed.has("--keep-alive") || repeat > 1 || parsed.has("--json") {
                // One persistent connection for all rounds; responses are
                // deterministic, so only the last is printed — or, under
                // --json, a machine-readable round-trip summary instead.
                run_keep_alive_analyze(
                    url,
                    &graph_json,
                    &memories,
                    processors,
                    no_sim,
                    repeat,
                    parsed.has("--json"),
                )
            } else {
                client::analyze(url, &graph_json, &memories, processors, no_sim)
            }
        }
        "batch" => {
            let memories = parse_sweep(
                &parsed.cmd,
                parsed.flag("--memory-sweep").unwrap_or_else(|| usage()),
            );
            let processors: usize = parsed.parse_flag("--processors").unwrap_or(1);
            // One JSON graph document (or quoted "fingerprint") per
            // non-empty stdin line — the NDJSON shape `graphio generate`
            // emits.
            let (lines, graphs): (Vec<usize>, Vec<String>) = read_stdin_to_string()
                .lines()
                .enumerate()
                .map(|(i, l)| (i + 1, l.trim()))
                .filter(|(_, l)| !l.is_empty())
                .map(|(no, l)| (no, l.to_string()))
                .unzip();
            if graphs.is_empty() {
                eprintln!("error: `graphio client batch` expects one graph JSON per stdin line");
                std::process::exit(1);
            }
            batch_lines = Some(lines);
            client::batch(url, &graphs, &memories, processors, parsed.has("--no-sim"))
        }
        "register" => {
            let graph_json = read_stdin_to_string();
            client::request("POST", url, "/graphs", Some(graph_json.trim_end()))
        }
        "stats" => client::request("GET", url, "/stats", None),
        "health" => client::request("GET", url, "/healthz", None),
        _ => usage(),
    };

    match response {
        Ok(r) if r.status == 200 => write_stdout(&r.body),
        Ok(r) => {
            // When the server blames a batch entry by index, also name
            // the stdin line it came from.
            let line_note = batch_lines
                .as_ref()
                .zip(client::batch_blame_index(&r.body))
                .and_then(|(lines, index)| lines.get(index))
                .map(|line| format!(" (stdin line {line})"))
                .unwrap_or_default();
            eprintln!(
                "error: server returned {}: {}{line_note}",
                r.status,
                r.body.trim_end()
            );
            std::process::exit(1);
        }
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(1);
        }
    }
}

/// `--keep-alive` / `--repeat N`: issue the analyze request `repeat`
/// times over one persistent connection, verifying every round succeeds
/// and reporting the reuse ratio on stderr (stdout stays the pristine
/// response body for piping/diffing). Under `--json` the printed body is
/// replaced by a machine-readable round-trip summary — request count,
/// connects, client-side retries, and the latency digest (p50/p99, µs)
/// from a client-side [`graphio::obs::Histogram`].
fn run_keep_alive_analyze(
    url: &str,
    graph_json: &str,
    memories: &[usize],
    processors: usize,
    no_sim: bool,
    repeat: u64,
    json_summary: bool,
) -> Result<client::Response, client::ClientError> {
    let mut session = client::Client::new(url)?;
    let latency = graphio::obs::Histogram::new();
    let mut last = None;
    for round in 0..repeat {
        let started = std::time::Instant::now();
        let r = client::analyze_on(&mut session, graph_json, memories, processors, no_sim)?;
        let us = u64::try_from(started.elapsed().as_micros()).unwrap_or(u64::MAX);
        latency.record(us.max(1));
        if r.status != 200 {
            eprintln!(
                "error: server returned {} on round {round}: {}",
                r.status,
                r.body.trim_end()
            );
            std::process::exit(1);
        }
        last = Some(r);
    }
    eprintln!(
        "keep-alive: {repeat} requests over {} connection(s)",
        session.connects()
    );
    let mut last = last.expect("repeat >= 1");
    if json_summary {
        last.body = format!(
            "{{\"requests\":{repeat},\"connects\":{},\"retries\":{},\"latency_us\":{}}}\n",
            session.connects(),
            session.retries(),
            loadgen::latency_json(&latency.snapshot()),
        );
    }
    Ok(last)
}

/// Default server for the trace subcommands: the `graphio serve` /
/// `graphio cluster` default port.
const DEFAULT_TRACE_SERVER: &str = "http://127.0.0.1:7878";

/// `graphio trace <id> [--server URL]`: fetch one flight-recorder record
/// — through a router this is the assembled distributed tree — and
/// pretty-print its phase tree with per-span share of the parent.
fn cmd_trace(args: &[String]) {
    let parsed = parse_args("trace", args, &["--server"], &[]);
    let [id] = parsed.positional.as_slice() else {
        eprintln!("error: `graphio trace` expects exactly one trace id");
        usage()
    };
    let url = parsed.flag("--server").unwrap_or(DEFAULT_TRACE_SERVER);
    let response = client::request("GET", url, &format!("/trace/{id}"), None);
    match response {
        Ok(r) if r.status == 200 => {
            let doc = graphio::graph::json::parse(&r.body).unwrap_or_else(|e| {
                eprintln!("error: trace response is not JSON: {e}");
                std::process::exit(1);
            });
            write_stdout(&render_trace(&doc));
        }
        Ok(r) => {
            eprintln!("error: server returned {}: {}", r.status, r.body.trim_end());
            std::process::exit(1);
        }
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(1);
        }
    }
}

/// `graphio traces [--slowest K] [--server URL]`: list the slowest recent
/// flight-recorder records, one line each — the candidates to feed into
/// `graphio trace <id>`.
fn cmd_traces(args: &[String]) {
    let parsed = parse_args("traces", args, &["--server", "--slowest"], &[]);
    if !parsed.positional.is_empty() {
        usage();
    }
    let url = parsed.flag("--server").unwrap_or(DEFAULT_TRACE_SERVER);
    let k: usize = parsed.parse_flag("--slowest").unwrap_or(10).max(1);
    // Over-fetch the whole ring and rank client-side: "slowest" is a
    // different order than the server's "most recent".
    let response = client::request("GET", url, "/traces?n=4096", None);
    let body = match response {
        Ok(r) if r.status == 200 => r.body,
        Ok(r) => {
            eprintln!("error: server returned {}: {}", r.status, r.body.trim_end());
            std::process::exit(1);
        }
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(1);
        }
    };
    let doc = graphio::graph::json::parse(&body).unwrap_or_else(|e| {
        eprintln!("error: traces response is not JSON: {e}");
        std::process::exit(1);
    });
    use graphio::graph::json::JsonValue;
    let mut records: Vec<&JsonValue> = doc.as_array().unwrap_or(&[]).iter().collect();
    records.sort_by_key(|r| {
        std::cmp::Reverse(r.get("elapsed_us").and_then(JsonValue::as_u64).unwrap_or(0))
    });
    let mut out = String::new();
    for record in records.into_iter().take(k) {
        let field = |key: &str| {
            record
                .get(key)
                .and_then(JsonValue::as_str)
                .unwrap_or("-")
                .to_string()
        };
        let num = |key: &str| record.get(key).and_then(JsonValue::as_u64).unwrap_or(0);
        out.push_str(&format!(
            "{}  {:>10}µs  status {}  {}  spans {}\n",
            field("trace"),
            num("elapsed_us"),
            num("status"),
            field("endpoint"),
            num("spans"),
        ));
    }
    if out.is_empty() {
        eprintln!("no recorded traces at {url}");
        return;
    }
    write_stdout(&out);
}

/// `graphio profile --server URL [--seconds S] [--flamegraph FILE]`:
/// sample a live server (through a router this merges every backend's
/// profile under `backend <addr>` frames) and summarize where the time
/// went. `--flamegraph` writes the raw collapsed-stack text, ready for
/// `flamegraph.pl` or any speedscope-style viewer.
fn cmd_profile(args: &[String]) {
    let parsed = parse_args(
        "profile",
        args,
        &["--server", "--seconds", "--flamegraph"],
        &[],
    );
    if !parsed.positional.is_empty() {
        usage();
    }
    let url = parsed.flag("--server").unwrap_or(DEFAULT_TRACE_SERVER);
    let seconds: u64 = parsed.parse_flag("--seconds").unwrap_or(2);
    let response = client::request(
        "GET",
        url,
        &format!("/debug/profile?seconds={seconds}"),
        None,
    );
    let body = match response {
        Ok(r) if r.status == 200 => r.body,
        Ok(r) => {
            eprintln!("error: server returned {}: {}", r.status, r.body.trim_end());
            std::process::exit(1);
        }
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(1);
        }
    };
    let Some(stacks) = graphio::obs::profile::parse_collapsed(&body) else {
        eprintln!("error: malformed collapsed-stack response");
        std::process::exit(1);
    };
    if let Some(path) = parsed.flag("--flamegraph") {
        if let Err(e) = std::fs::write(path, &body) {
            eprintln!("error: cannot write {path}: {e}");
            std::process::exit(1);
        }
        eprintln!("wrote collapsed stacks to {path}");
    }
    let total: u64 = stacks.iter().map(|(_, count)| count).sum();
    if total == 0 {
        println!("no samples in {seconds}s window (is the server idle?)");
        return;
    }
    // Two views: time by leaf frame (self time — where samples actually
    // landed) and time by any-frame presence (inclusive time).
    let mut self_counts: HashMap<&str, u64> = HashMap::new();
    let mut incl_counts: HashMap<&str, u64> = HashMap::new();
    for (path, count) in &stacks {
        if let Some(leaf) = path.last() {
            *self_counts.entry(leaf).or_insert(0) += count;
        }
        let mut seen: Vec<&str> = Vec::new();
        for frame in path {
            if !seen.contains(&frame.as_str()) {
                seen.push(frame);
                *incl_counts.entry(frame).or_insert(0) += count;
            }
        }
    }
    let mut out = format!("{total} samples over {seconds}s\n\nself  (leaf frame)\n");
    fn top<'a>(counts: &HashMap<&'a str, u64>) -> Vec<(&'a str, u64)> {
        let mut rows: Vec<(&str, u64)> = counts.iter().map(|(k, v)| (*k, *v)).collect();
        rows.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(b.0)));
        rows.truncate(12);
        rows
    }
    for (name, count) in top(&self_counts) {
        out.push_str(&format!(
            "  {:>5.1}%  {count:>7}  {name}\n",
            100.0 * count as f64 / total as f64
        ));
    }
    out.push_str("\ninclusive  (frame anywhere on stack)\n");
    for (name, count) in top(&incl_counts) {
        out.push_str(&format!(
            "  {:>5.1}%  {count:>7}  {name}\n",
            100.0 * count as f64 / total as f64
        ));
    }
    write_stdout(&out);
}

/// Renders one `GET /trace/{id}` document as an indented phase tree:
/// header scalars, then one line per span with its duration and share of
/// the parent span's duration.
fn render_trace(doc: &graphio::graph::json::JsonValue) -> String {
    use graphio::graph::json::JsonValue;
    let text = |key: &str| doc.get(key).and_then(JsonValue::as_str).unwrap_or("-");
    let num = |key: &str| doc.get(key).and_then(JsonValue::as_u64).unwrap_or(0);
    let mut out = format!(
        "trace {}  endpoint {}  status {}  elapsed {}µs\n",
        text("trace"),
        text("endpoint"),
        num("status"),
        num("elapsed_us"),
    );
    if let Some(fp) = doc.get("fingerprint").and_then(JsonValue::as_str) {
        out.push_str(&format!("fingerprint {fp}  session {}\n", text("outcome")));
    }
    if let Some(backends) = doc.get("backends").and_then(JsonValue::as_array) {
        let names: Vec<&str> = backends.iter().filter_map(JsonValue::as_str).collect();
        if !names.is_empty() {
            out.push_str(&format!("backends: {}\n", names.join(", ")));
        }
    }
    let dropped = num("dropped_spans");
    if dropped > 0 {
        out.push_str(&format!("dropped spans: {dropped}\n"));
    }
    let spans = doc
        .get("spans")
        .and_then(JsonValue::as_array)
        .unwrap_or(&[]);
    let mut children: Vec<Vec<usize>> = vec![Vec::new(); spans.len()];
    let mut roots: Vec<usize> = Vec::new();
    for (i, span) in spans.iter().enumerate() {
        match span.get("parent").and_then(JsonValue::as_u64) {
            Some(p) if (p as usize) < i => children[p as usize].push(i),
            _ => roots.push(i),
        }
    }
    fn emit(
        out: &mut String,
        spans: &[graphio::graph::json::JsonValue],
        children: &[Vec<usize>],
        index: usize,
        depth: usize,
        parent_us: Option<u64>,
    ) {
        use graphio::graph::json::JsonValue;
        let span = &spans[index];
        let name = span.get("name").and_then(JsonValue::as_str).unwrap_or("?");
        let dur = span.get("dur_us").and_then(JsonValue::as_u64).unwrap_or(0);
        let share = match parent_us {
            Some(p) if p > 0 => format!("  ({:.1}% of parent)", 100.0 * dur as f64 / p as f64),
            _ => String::new(),
        };
        out.push_str(&format!("{}{name}  {dur}µs{share}\n", "  ".repeat(depth)));
        for &child in &children[index] {
            emit(out, spans, children, child, depth + 1, Some(dur));
        }
    }
    for root in roots {
        emit(&mut out, spans, &children, root, 1, None);
    }
    out
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(cmd) = args.first() else { usage() };
    let rest = &args[1..];
    match cmd.as_str() {
        "generate" => cmd_generate(rest),
        "bound" => cmd_bound(rest),
        "analyze" => cmd_analyze(rest),
        "simulate" => cmd_simulate(rest),
        "serve" => cmd_serve(rest),
        "client" => cmd_client(rest),
        "router" => cmd_router(rest),
        "cluster" => cmd_cluster(rest),
        "loadgen" => cmd_loadgen(rest),
        "trace" => cmd_trace(rest),
        "traces" => cmd_traces(rest),
        "profile" => cmd_profile(rest),
        "store" => cmd_store(rest),
        "precompute" => cmd_precompute(rest),
        "dot" => {
            let parsed = parse_args("dot", rest, &[], &[]);
            if !parsed.positional.is_empty() {
                usage();
            }
            let g = read_graph_from_stdin();
            write_stdout(&to_dot(&g, &DotOptions::default()));
        }
        _ => usage(),
    }
}
