//! `graphio` command-line tool: generate computation graphs, compute I/O
//! lower bounds, run whole analysis sessions, and simulate executions from
//! the shell.
//!
//! ```text
//! graphio generate fft 6                     # emit edge-list JSON on stdout
//! graphio bound --memory 4 < graph.json      # spectral + min-cut bounds
//! graphio analyze --memory-sweep 2,4,8,16 --threads 8 --json < graph.json
//! graphio simulate --memory 4 --policy lru < graph.json
//! graphio dot < graph.json                   # Graphviz rendering
//! ```
//!
//! `analyze` is the cached path: one `Analyzer` session computes each
//! Laplacian spectrum and the min-cut sweep once and serves every memory
//! size, theorem variant and processor count from the cache.

use graphio::baselines::convex_mincut::{convex_min_cut_bound, ConvexMinCutOptions};
use graphio::graph::dot::{to_dot, DotOptions};
use graphio::graph::generators::{
    bhk_hypercube, diamond_dag, erdos_renyi_dag, fft_butterfly, inner_product, naive_matmul,
    strassen_matmul,
};
use graphio::graph::json::JsonValue;
use graphio::graph::topo::{bfs_order, dfs_order, natural_order};
use graphio::graph::{CompGraph, EdgeListGraph};
use graphio::linalg::stats::sparse_matvec_count;
use graphio::pebble::{simulate, Policy};
use graphio::spectral::{Analyzer, BoundOptions};
use std::io::Read;

fn usage() -> ! {
    eprintln!(
        "usage:\n  graphio generate <family> <size> [--p <prob>] [--seed <s>]\n  \
         graphio bound --memory <M> [--processors <p>] < graph.json\n  \
         graphio analyze --memory-sweep <M1,M2,...> [--processors <p>] [--threads <N>] [--no-sim] [--json] < graph.json\n  \
         graphio simulate --memory <M> [--policy lru|fifo|belady|random] [--order natural|dfs|bfs] < graph.json\n  \
         graphio dot < graph.json\n\n\
         families: fft, bhk, matmul, strassen, inner, diamond, er"
    );
    std::process::exit(2)
}

fn read_graph_from_stdin() -> CompGraph {
    let mut buf = String::new();
    std::io::stdin()
        .read_to_string(&mut buf)
        .unwrap_or_else(|e| {
            eprintln!("error reading stdin: {e}");
            std::process::exit(1);
        });
    let el = EdgeListGraph::from_json(&buf).unwrap_or_else(|e| {
        eprintln!("error parsing graph JSON: {e}");
        std::process::exit(1);
    });
    CompGraph::try_from(el).unwrap_or_else(|e| {
        eprintln!("invalid graph: {e}");
        std::process::exit(1);
    })
}

fn flag_value(args: &[String], flag: &str) -> Option<String> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1).cloned())
}

/// Writes bulk output to stdout. A broken pipe (`generate ... | head`, or
/// a downstream command that rejected its flags) is a normal way for the
/// reader to hang up, so it exits 0 quietly instead of panicking; any
/// other write failure (e.g. a full disk) is a real error and exits 1.
fn write_stdout(s: &str) {
    use std::io::Write as _;
    let mut out = std::io::stdout().lock();
    if let Err(e) = out.write_all(s.as_bytes()).and_then(|()| out.flush()) {
        if e.kind() == std::io::ErrorKind::BrokenPipe {
            std::process::exit(0);
        }
        eprintln!("error writing to stdout: {e}");
        std::process::exit(1);
    }
}

fn mincut_options(n: usize) -> ConvexMinCutOptions {
    // Shared size-scaled schedule (same source of truth as the bench
    // harness).
    ConvexMinCutOptions::for_graph_size(n)
}

/// One memory point of an `analyze` session.
struct AnalyzeRow {
    memory: usize,
    thm4: Option<(f64, usize)>,
    thm5: Option<f64>,
    thm6: Option<f64>,
    mincut: u64,
    sim_upper: Option<u64>,
}

fn cmd_analyze(args: &[String]) {
    let memories: Vec<usize> = flag_value(args, "--memory-sweep")
        .unwrap_or_else(|| usage())
        .split(',')
        .map(|s| s.trim().parse().unwrap_or_else(|_| usage()))
        .collect();
    if memories.is_empty() {
        usage();
    }
    let processors: usize = flag_value(args, "--processors")
        .and_then(|s| s.parse().ok())
        .unwrap_or(1);
    if let Some(threads) = flag_value(args, "--threads") {
        let threads: usize = threads.parse().unwrap_or_else(|_| usage());
        graphio::linalg::set_threads(threads);
    }
    let want_json = args.iter().any(|a| a == "--json");
    let no_sim = args.iter().any(|a| a == "--no-sim");

    let g = read_graph_from_stdin();
    let analyzer = Analyzer::new(&g);
    let opts = BoundOptions::for_graph_size(g.n());
    let mc_opts = mincut_options(g.n());
    let order = if no_sim {
        Vec::new()
    } else {
        natural_order(&g)
    };
    let matvecs_before = sparse_matvec_count();

    let rows: Vec<AnalyzeRow> = memories
        .iter()
        .map(|&m| {
            let thm4 = analyzer.bound(m, &opts).ok().map(|b| (b.bound, b.best_k));
            let thm5 = analyzer.bound_original(m, &opts).ok().map(|b| b.bound);
            let thm6 = (processors > 1)
                .then(|| analyzer.parallel_bound(m, processors, &opts).ok())
                .flatten()
                .map(|b| b.bound);
            let mincut = analyzer.min_cut_bound(m, &mc_opts);
            let sim_upper = (!no_sim)
                .then(|| {
                    [Policy::Lru, Policy::Belady]
                        .iter()
                        .filter_map(|&p| simulate(&g, &order, m, p, 0).ok().map(|r| r.io()))
                        .min()
                })
                .flatten();
            AnalyzeRow {
                memory: m,
                thm4,
                thm5,
                thm6,
                mincut,
                sim_upper,
            }
        })
        .collect();

    let stats = analyzer.stats();
    let matvecs = sparse_matvec_count() - matvecs_before;

    if want_json {
        let mut doc = vec![
            ("n".to_string(), JsonValue::Number(g.n() as f64)),
            ("edges".to_string(), JsonValue::Number(g.num_edges() as f64)),
            (
                "processors".to_string(),
                JsonValue::Number(processors as f64),
            ),
            (
                "eigensolves".to_string(),
                JsonValue::Number(stats.spectrum_misses as f64),
            ),
            (
                "sparse_matvecs".to_string(),
                JsonValue::Number(matvecs as f64),
            ),
        ];
        let opt_num = |v: Option<f64>| v.map_or(JsonValue::Null, JsonValue::Number);
        doc.push((
            "sweep".to_string(),
            JsonValue::Array(
                rows.iter()
                    .map(|r| {
                        JsonValue::Object(vec![
                            ("memory".into(), JsonValue::Number(r.memory as f64)),
                            ("thm4".into(), opt_num(r.thm4.map(|(b, _)| b))),
                            (
                                "best_k".into(),
                                r.thm4
                                    .map_or(JsonValue::Null, |(_, k)| JsonValue::Number(k as f64)),
                            ),
                            ("thm5".into(), opt_num(r.thm5)),
                            ("thm6".into(), opt_num(r.thm6)),
                            ("mincut".into(), JsonValue::Number(r.mincut as f64)),
                            ("sim_upper".into(), opt_num(r.sim_upper.map(|s| s as f64))),
                        ])
                    })
                    .collect(),
            ),
        ));
        println!("{}", JsonValue::Object(doc));
        return;
    }

    println!(
        "analysis of graph: n = {}, edges = {}, h = {}, threads = {}",
        g.n(),
        g.num_edges(),
        opts.h,
        graphio::linalg::threads::effective_threads(),
    );
    let fmt_opt = |v: Option<f64>| v.map_or("-".to_string(), |b| format!("{b:.1}"));
    println!(
        "{:>8} {:>14} {:>8} {:>14} {:>14} {:>10} {:>11}",
        "M", "thm4", "best_k", "thm5", "thm6", "mincut", "sim_upper"
    );
    for r in &rows {
        println!(
            "{:>8} {:>14} {:>8} {:>14} {:>14} {:>10} {:>11}",
            r.memory,
            fmt_opt(r.thm4.map(|(b, _)| b)),
            r.thm4.map_or("-".to_string(), |(_, k)| k.to_string()),
            fmt_opt(r.thm5),
            fmt_opt(r.thm6),
            r.mincut,
            r.sim_upper.map_or("-".to_string(), |s| s.to_string()),
        );
    }
    println!(
        "eigensolves: {} ({} cache hits), sparse mat-vecs: {}, min-cut sweeps: {}",
        stats.spectrum_misses, stats.spectrum_hits, matvecs, stats.mincut_misses,
    );
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(cmd) = args.first() else { usage() };
    match cmd.as_str() {
        "generate" => {
            let family = args.get(1).unwrap_or_else(|| usage());
            let size: usize = args
                .get(2)
                .and_then(|s| s.parse().ok())
                .unwrap_or_else(|| usage());
            let seed: u64 = flag_value(&args, "--seed")
                .and_then(|s| s.parse().ok())
                .unwrap_or(0);
            let p: f64 = flag_value(&args, "--p")
                .and_then(|s| s.parse().ok())
                .unwrap_or(0.1);
            let g = match family.as_str() {
                "fft" => fft_butterfly(size),
                "bhk" => bhk_hypercube(size),
                "matmul" => naive_matmul(size),
                "strassen" => strassen_matmul(size),
                "inner" => inner_product(size),
                "diamond" => diamond_dag(size, size),
                "er" => erdos_renyi_dag(size, p, seed),
                _ => usage(),
            };
            write_stdout(&g.to_edge_list().to_json());
            write_stdout("\n");
        }
        "bound" => {
            let m: usize = flag_value(&args, "--memory")
                .and_then(|s| s.parse().ok())
                .unwrap_or_else(|| usage());
            let p: usize = flag_value(&args, "--processors")
                .and_then(|s| s.parse().ok())
                .unwrap_or(1);
            let g = read_graph_from_stdin();
            // The CLI shares the bench harness's size-scaled tuning
            // schedule (BoundOptions::for_graph_size).
            let opts = BoundOptions::for_graph_size(g.n());
            let analyzer = Analyzer::new(&g);
            let spectral = if p == 1 {
                analyzer.bound(m, &opts)
            } else {
                analyzer.parallel_bound(m, p, &opts)
            };
            match spectral {
                Ok(b) => println!(
                    "spectral lower bound: {:.2}  (best k = {}, n = {})",
                    b.bound,
                    b.best_k,
                    g.n()
                ),
                Err(e) => eprintln!("spectral bound failed: {e}"),
            }
            let mc = convex_min_cut_bound(&g, m, &mincut_options(g.n()));
            println!(
                "convex min-cut bound: {}  (max wavefront = {})",
                mc.bound, mc.max_cut
            );
        }
        "analyze" => cmd_analyze(&args),
        "simulate" => {
            let m: usize = flag_value(&args, "--memory")
                .and_then(|s| s.parse().ok())
                .unwrap_or_else(|| usage());
            let policy = match flag_value(&args, "--policy").as_deref() {
                None | Some("lru") => Policy::Lru,
                Some("fifo") => Policy::Fifo,
                Some("belady") => Policy::Belady,
                Some("random") => Policy::Random,
                Some(_) => usage(),
            };
            let g = read_graph_from_stdin();
            let order = match flag_value(&args, "--order").as_deref() {
                None | Some("natural") => natural_order(&g),
                Some("dfs") => dfs_order(&g),
                Some("bfs") => bfs_order(&g),
                Some(_) => usage(),
            };
            match simulate(&g, &order, m, policy, 0) {
                Ok(r) => println!(
                    "simulated I/O: {} ({} reads, {} writes, peak residency {})",
                    r.io(),
                    r.reads,
                    r.writes,
                    r.peak_resident
                ),
                Err(e) => {
                    eprintln!("simulation failed: {e}");
                    std::process::exit(1);
                }
            }
        }
        "dot" => {
            let g = read_graph_from_stdin();
            write_stdout(&to_dot(&g, &DotOptions::default()));
        }
        _ => usage(),
    }
}
