//! # graphio — spectral lower bounds on the I/O complexity of computation graphs
//!
//! A from-scratch Rust implementation of Jain & Zaharia, *"Spectral Lower
//! Bounds on the I/O Complexity of Computation Graphs"* (SPAA 2020),
//! including every substrate the paper's evaluation depends on:
//!
//! | Crate | Contents |
//! |---|---|
//! | [`graph`] | computation DAGs, the §6 generators (FFT, matmul, Strassen, Bellman–Held–Karp, Erdős–Rényi), a §6.1-style tracing frontend |
//! | [`linalg`] | dense Householder+QL and sparse deflated-Lanczos symmetric eigensolvers |
//! | [`spectral`] | the paper's contribution: Theorems 4/5/6 bounds, §5 closed forms (hypercube, butterfly spectrum of Theorem 7, Erdős–Rényi) |
//! | [`pebble`] | the §3 two-level-memory execution simulator (upper bounds) |
//! | [`baselines`] | the §6.3 convex min-cut baseline and an exact tiny-graph optimum oracle |
//! | [`service`] | the HTTP analysis server: sharded session cache + worker pool, `graphio serve` / `graphio client` |
//! | [`store`] | persistent content-addressed session store: CRC32-framed segment log + binary codec, `graphio store` / `graphio precompute`, `serve --store` |
//! | [`router`] | the fingerprint-affine cluster tier: consistent-hash reverse proxy with scatter/gather batching and failover, `graphio router` / `graphio cluster` |
//! | [`obs`] | observability: phase-tracing spans, lock-free log₂ latency histograms, Prometheus text exposition (`GET /metrics`), slow-request logs, `graphio loadgen` |
//!
//! ## Quickstart
//!
//! ```
//! use graphio::prelude::*;
//!
//! // The computation graph of a 2^5-point FFT.
//! let g = fft_butterfly(5);
//!
//! // Lower-bound the I/O of ANY evaluation order with fast memory M = 4.
//! let lower = spectral_bound(&g, 4, &BoundOptions::default()).unwrap();
//!
//! // Upper-bound it by simulating a depth-first order under LRU.
//! let order = graphio::graph::topo::dfs_order(&g);
//! let upper = simulate(&g, &order, 4, Policy::Lru, 0).unwrap();
//!
//! assert!(lower.bound <= upper.io() as f64);
//! ```

pub use graphio_baselines as baselines;
pub use graphio_graph as graph;
pub use graphio_linalg as linalg;
pub use graphio_obs as obs;
pub use graphio_pebble as pebble;
pub use graphio_router as router;
pub use graphio_service as service;
pub use graphio_spectral as spectral;
pub use graphio_store as store;

/// One-stop imports for the common workflow: generate or trace a graph,
/// compute lower bounds, simulate executions.
pub mod prelude {
    pub use graphio_baselines::{convex_min_cut_bound, exact_optimal_io, ConvexMinCutOptions};
    pub use graphio_graph::generators::{
        bhk_hypercube, diamond_dag, erdos_renyi_dag, fft_butterfly, inner_product, naive_matmul,
        strassen_matmul,
    };
    pub use graphio_graph::{fingerprint, CompGraph, Fingerprint, GraphBuilder, OpKind, Tracer};
    pub use graphio_linalg::{set_threads, Threads};
    pub use graphio_pebble::{simulate, Policy};
    pub use graphio_service::{serve, ServiceConfig};
    pub use graphio_spectral::{
        parallel_spectral_bound, spectral_bound, spectral_bound_original, Analyzer, BoundOptions,
        EigenMethod, LaplacianKind, OwnedAnalyzer, ScaleTier, SpectralBound,
    };
    pub use graphio_store::{load_session, save_session, warm_session, Store, StoreConfig};
}
