//! Cross-crate properties of the structural fingerprint: relabeling
//! invariance across the whole generator zoo, and the cache-safety
//! property the service relies on — fingerprint-equal graphs produce
//! bit-identical analysis results.

use graphio::graph::generators::{
    bhk_hypercube, binary_reduction_tree, diamond_dag, erdos_renyi_dag, fft_butterfly,
    inner_product, layered_random_dag, naive_matmul, strassen_matmul,
};
use graphio::graph::{fingerprint, CompGraph, EdgeListGraph};
use graphio::prelude::*;
use proptest::prelude::*;
use std::collections::HashMap;

/// One graph from every family at a random small size.
fn any_generated_graph() -> impl Strategy<Value = CompGraph> {
    (0usize..9, 0u64..1000).prop_map(|(which, seed)| match which {
        0 => fft_butterfly(1 + (seed as usize % 4)),
        1 => bhk_hypercube(1 + (seed as usize % 5)),
        2 => naive_matmul(1 + (seed as usize % 3)),
        3 => strassen_matmul(1 << (seed as usize % 3)),
        4 => inner_product(1 + (seed as usize % 8)),
        5 => diamond_dag(1 + (seed as usize % 5), 1 + (seed as usize / 7 % 5)),
        6 => binary_reduction_tree(seed as usize % 6),
        7 => erdos_renyi_dag(2 + (seed as usize % 24), 0.3, seed),
        _ => layered_random_dag(1 + (seed as usize % 3), 1 + (seed as usize % 5), 0.5, seed),
    })
}

/// Rebuilds `g` with vertex `v` renamed to `perm[v]`.
fn relabel(g: &CompGraph, perm: &[u32]) -> CompGraph {
    let el = g.to_edge_list();
    let mut ops = el.ops.clone();
    for (v, op) in el.ops.iter().enumerate() {
        ops[perm[v] as usize] = *op;
    }
    let edges = el
        .edges
        .iter()
        .map(|&(u, v)| (perm[u as usize], perm[v as usize]))
        .collect();
    CompGraph::try_from(EdgeListGraph { ops, edges }).unwrap()
}

/// A deterministic pseudo-random permutation of `0..n` from `seed`.
fn permutation(n: usize, mut seed: u64) -> Vec<u32> {
    let mut perm: Vec<u32> = (0..n as u32).collect();
    for i in (1..n).rev() {
        // SplitMix64 step.
        seed = seed.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = seed;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        let j = (z ^ (z >> 31)) as usize % (i + 1);
        perm.swap(i, j);
    }
    perm
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn fingerprint_is_relabeling_invariant(g in any_generated_graph(), seed in 0u64..1000) {
        let h = relabel(&g, &permutation(g.n(), seed));
        prop_assert_eq!(fingerprint(&g), fingerprint(&h));
    }

    /// The service-cache safety property: among random DAGs, graphs that
    /// share a fingerprint get bit-identical Theorem 4/5 bounds — so
    /// serving a cached session keyed by fingerprint never serves wrong
    /// numbers. (Colliding fingerprints across genuinely different random
    /// DAGs would fail this loudly.)
    #[test]
    fn fingerprint_equal_implies_bound_equal(seed in 0u64..400) {
        let mut by_fp: HashMap<u128, (CompGraph, u64, u64)> = HashMap::new();
        for i in 0..12 {
            let s = seed * 31 + i;
            let g = erdos_renyi_dag(3 + (s as usize % 12), 0.4, s);
            let opts = BoundOptions::for_graph_size(g.n());
            let bits = |g: &CompGraph| {
                let an = Analyzer::new(g);
                (
                    an.bound(4, &opts).map(|b| b.bound.to_bits()).unwrap_or(u64::MAX),
                    an.bound_original(4, &opts).map(|b| b.bound.to_bits()).unwrap_or(u64::MAX),
                )
            };
            let fp = fingerprint(&g).0;
            let (b4, b5) = bits(&g);
            if let Some((prev, p4, p5)) = by_fp.get(&fp) {
                prop_assert_eq!(*p4, b4, "fingerprint collision with different thm4: {:?} vs {:?}", prev.n(), g.n());
                prop_assert_eq!(*p5, b5, "fingerprint collision with different thm5");
            } else {
                by_fp.insert(fp, (g, b4, b5));
            }
        }
    }

    #[test]
    fn distinct_seeds_rarely_share_fingerprints(seed in 0u64..200) {
        // Sanity that the hash actually separates: two independent dense
        // random DAGs of the same size almost surely differ.
        let a = erdos_renyi_dag(20, 0.5, seed * 2 + 1);
        let b = erdos_renyi_dag(20, 0.5, seed * 2 + 2);
        if a.to_edge_list() != b.to_edge_list() {
            prop_assert_ne!(fingerprint(&a), fingerprint(&b));
        }
    }
}
