//! End-to-end tests of the `graphio` CLI binary (generate → bound /
//! simulate / dot pipelines through real process boundaries).

use std::io::Write as _;
use std::process::{Command, Stdio};

fn cli() -> Command {
    Command::new(env!("CARGO_BIN_EXE_graphio"))
}

fn generate(family: &str, size: usize) -> String {
    let out = cli()
        .args(["generate", family, &size.to_string()])
        .output()
        .expect("spawn graphio generate");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    String::from_utf8(out.stdout).expect("utf8 json")
}

fn run_with_stdin(args: &[&str], stdin_data: &str) -> (String, String, bool) {
    let mut child = cli()
        .args(args)
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("spawn graphio");
    // A child that rejects its arguments exits before reading stdin, so a
    // broken pipe here is expected for usage-error tests.
    if let Err(e) = child
        .stdin
        .as_mut()
        .expect("stdin piped")
        .write_all(stdin_data.as_bytes())
    {
        assert_eq!(e.kind(), std::io::ErrorKind::BrokenPipe, "write stdin: {e}");
    }
    let out = child.wait_with_output().expect("wait");
    (
        String::from_utf8_lossy(&out.stdout).to_string(),
        String::from_utf8_lossy(&out.stderr).to_string(),
        out.status.success(),
    )
}

#[test]
fn generate_emits_parseable_edge_list() {
    let json = generate("fft", 3);
    let el = graphio::graph::EdgeListGraph::from_json(&json).unwrap();
    assert_eq!(el.ops.len(), 4 * 8);
    assert_eq!(el.edges.len(), 2 * 3 * 8);
}

#[test]
fn bound_pipeline_reports_both_bounds() {
    let json = generate("fft", 5);
    let (stdout, stderr, ok) = run_with_stdin(&["bound", "--memory", "4"], &json);
    assert!(ok, "stderr: {stderr}");
    assert!(stdout.contains("spectral lower bound:"), "{stdout}");
    assert!(stdout.contains("convex min-cut bound:"), "{stdout}");
}

#[test]
fn simulate_pipeline_reports_io() {
    let json = generate("diamond", 4);
    let (stdout, _, ok) = run_with_stdin(
        &[
            "simulate", "--memory", "4", "--policy", "belady", "--order", "dfs",
        ],
        &json,
    );
    assert!(ok);
    assert!(stdout.contains("simulated I/O:"), "{stdout}");
}

#[test]
fn simulate_rejects_infeasible_memory() {
    let json = generate("matmul", 3);
    // matmul n=3 has 3-ary sums: needs M >= 4.
    let (_, stderr, ok) = run_with_stdin(&["simulate", "--memory", "3"], &json);
    assert!(!ok);
    assert!(stderr.contains("simulation failed"), "{stderr}");
}

#[test]
fn analyze_sweep_reports_every_memory_and_one_eigensolve() {
    let json = generate("fft", 5);
    let (stdout, stderr, ok) = run_with_stdin(
        &["analyze", "--memory-sweep", "2,4,8,16", "--threads", "2"],
        &json,
    );
    assert!(ok, "stderr: {stderr}");
    for m in ["2", "4", "8", "16"] {
        assert!(
            stdout.lines().any(|l| l.trim_start().starts_with(m)),
            "missing row for M={m} in:\n{stdout}"
        );
    }
    // One Analyzer session, two Laplacian kinds (Thm4 + Thm5) -> exactly
    // two eigensolves however many memory sizes were swept.
    assert!(
        stdout.contains("eigensolves: 2"),
        "expected one eigensolve per Laplacian kind:\n{stdout}"
    );
}

#[test]
fn analyze_json_output_is_parseable_and_complete() {
    let json = generate("bhk", 5);
    let (stdout, stderr, ok) = run_with_stdin(
        &[
            "analyze",
            "--memory-sweep",
            "2,4,8",
            "--processors",
            "4",
            "--json",
        ],
        &json,
    );
    assert!(ok, "stderr: {stderr}");
    let doc = graphio::graph::json::parse(&stdout).expect("analyze --json must emit valid JSON");
    let sweep = doc.get("sweep").and_then(|s| s.as_array()).unwrap();
    assert_eq!(sweep.len(), 3);
    for row in sweep {
        assert!(row.get("memory").is_some());
        assert!(row.get("thm4").is_some());
        assert!(row.get("thm5").is_some());
        assert!(row.get("thm6").is_some());
        assert!(row.get("mincut").is_some());
        assert!(row.get("sim_upper").is_some());
    }
    assert_eq!(doc.get("eigensolves").and_then(|v| v.as_f64()), Some(2.0));
}

#[test]
fn dot_pipeline_renders_graphviz() {
    let json = generate("inner", 2);
    let (stdout, _, ok) = run_with_stdin(&["dot"], &json);
    assert!(ok);
    assert!(stdout.starts_with("digraph"));
    assert!(stdout.contains("->"));
}

#[test]
fn malformed_json_fails_cleanly() {
    let (_, stderr, ok) = run_with_stdin(&["bound", "--memory", "4"], "{not json");
    assert!(!ok);
    assert!(stderr.contains("error parsing graph JSON"));
}

#[test]
fn unknown_family_prints_usage() {
    let out = cli().args(["generate", "mystery", "3"]).output().unwrap();
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("usage"));
}

#[test]
fn unknown_flags_are_rejected_everywhere() {
    let json = generate("fft", 3);
    for args in [
        ["bound", "--memory", "4", "--bogus", "1"].as_slice(),
        &["analyze", "--memory-sweep", "2,4", "--frobnicate"],
        &["simulate", "--memory", "4", "--speed", "fast"],
        &["dot", "--color"],
        &["generate", "fft", "3", "--size", "9"],
        &["precompute", "--store", "x", "--frobnicate"],
        &["store", "stat", "--store", "x", "--bogus", "1"],
        &["router", "--backends", "127.0.0.1:1", "--bogus", "1"],
        &["cluster", "--frobnicate"],
    ] {
        let (_, stderr, ok) = run_with_stdin(args, &json);
        assert!(!ok, "{args:?} must fail");
        assert!(
            stderr.contains("unknown flag") && stderr.contains("usage"),
            "{args:?}: {stderr}"
        );
    }
}

/// Satellite regression: a malformed flag value must exit with the usage
/// status (2) and an error naming both the offending flag and the
/// subcommand — not just the bad value.
#[test]
fn malformed_threads_flag_names_flag_and_subcommand() {
    let json = generate("fft", 3);
    for (args, cmd) in [
        (
            ["analyze", "--memory-sweep", "2,4", "--threads", "banana"].as_slice(),
            "analyze",
        ),
        (&["bound", "--memory", "4", "--threads", "-3"], "bound"),
        (
            &["simulate", "--memory", "4", "--threads", "2.5"],
            "simulate",
        ),
    ] {
        let mut child = cli()
            .args(args)
            .stdin(Stdio::piped())
            .stdout(Stdio::piped())
            .stderr(Stdio::piped())
            .spawn()
            .expect("spawn graphio");
        if let Err(e) = child
            .stdin
            .as_mut()
            .expect("stdin piped")
            .write_all(json.as_bytes())
        {
            assert_eq!(e.kind(), std::io::ErrorKind::BrokenPipe, "{e}");
        }
        let out = child.wait_with_output().expect("wait");
        assert_eq!(out.status.code(), Some(2), "{args:?} must exit 2 (usage)");
        let stderr = String::from_utf8_lossy(&out.stderr);
        assert!(
            stderr.contains("--threads") && stderr.contains(&format!("`graphio {cmd}`")),
            "{args:?} must blame the flag and subcommand: {stderr}"
        );
    }
}

/// The new kernel knobs follow the same contract: a bad value exits 2
/// and the error names both the flag and the subcommand.
#[test]
fn malformed_simd_and_scale_tier_flags_name_flag_and_subcommand() {
    let json = generate("fft", 3);
    for (args, flag, cmd) in [
        (
            ["analyze", "--memory-sweep", "2,4", "--simd", "banana"].as_slice(),
            "--simd",
            "analyze",
        ),
        (
            &["analyze", "--memory-sweep", "2,4", "--scale-tier", "jumbo"],
            "--scale-tier",
            "analyze",
        ),
        (
            &["serve", "--port", "0", "--simd", "STRICT"],
            "--simd",
            "serve",
        ),
        (
            &["serve", "--port", "0", "--scale-tier", ""],
            "--scale-tier",
            "serve",
        ),
    ] {
        let mut child = cli()
            .args(args)
            .stdin(Stdio::piped())
            .stdout(Stdio::piped())
            .stderr(Stdio::piped())
            .spawn()
            .expect("spawn graphio");
        if let Err(e) = child
            .stdin
            .as_mut()
            .expect("stdin piped")
            .write_all(json.as_bytes())
        {
            assert_eq!(e.kind(), std::io::ErrorKind::BrokenPipe, "{e}");
        }
        let out = child.wait_with_output().expect("wait");
        assert_eq!(out.status.code(), Some(2), "{args:?} must exit 2 (usage)");
        let stderr = String::from_utf8_lossy(&out.stderr);
        assert!(
            stderr.contains("invalid value")
                && stderr.contains(flag)
                && stderr.contains(&format!("`graphio {cmd}`")),
            "{args:?} must blame the flag and subcommand: {stderr}"
        );
    }
}

/// The accepted spellings actually take effect end-to-end: forcing the
/// sparse tier on a small graph swaps the dense eigensolve for Lanczos
/// without changing what the analysis reports.
#[test]
fn analyze_accepts_simd_and_scale_tier_flags() {
    let json = generate("fft", 4); // n = 80: Auto would solve densely.
    let (auto_out, _, ok) = run_with_stdin(
        &[
            "analyze",
            "--memory-sweep",
            "4",
            "--simd",
            "strict",
            "--json",
        ],
        &json,
    );
    assert!(ok);
    let (sparse_out, _, ok) = run_with_stdin(
        &[
            "analyze",
            "--memory-sweep",
            "4",
            "--scale-tier",
            "sparse",
            "--simd",
            "off",
            "--json",
        ],
        &json,
    );
    assert!(ok);
    // Same graph, same sweep: the tier changes the solver, not the schema.
    for body in [&auto_out, &sparse_out] {
        assert!(
            body.contains("\"thm4\""),
            "analysis body missing thm4: {body}"
        );
    }
}

#[test]
fn bound_and_simulate_accept_threads() {
    let json = generate("fft", 4);
    let (stdout, stderr, ok) = run_with_stdin(&["bound", "--memory", "4", "--threads", "2"], &json);
    assert!(ok, "stderr: {stderr}");
    assert!(stdout.contains("spectral lower bound:"));
    let (stdout, stderr, ok) = run_with_stdin(
        &["simulate", "--memory", "8", "--threads", "2"],
        &generate("diamond", 4),
    );
    assert!(ok, "stderr: {stderr}");
    assert!(stdout.contains("simulated I/O:"));
}

#[test]
fn analyze_rejects_zero_memory_and_warns_on_duplicates() {
    let json = generate("fft", 3);
    let (_, stderr, ok) = run_with_stdin(&["analyze", "--memory-sweep", "2,0,4"], &json);
    assert!(!ok);
    assert!(stderr.contains("memory size 0"), "{stderr}");

    let (stdout, stderr, ok) =
        run_with_stdin(&["analyze", "--memory-sweep", "4,4,2", "--json"], &json);
    assert!(ok, "stderr: {stderr}");
    assert!(
        stderr.contains("duplicate memory size 4"),
        "expected dedup warning: {stderr}"
    );
    let doc = graphio::graph::json::parse(&stdout).unwrap();
    let sweep = doc.get("sweep").and_then(|s| s.as_array()).unwrap();
    assert_eq!(sweep.len(), 2, "duplicates must be dropped: {stdout}");
}

/// Offline persistence round trip through real process boundaries:
/// `precompute` sweeps an NDJSON corpus into a store, `store
/// stat/ls/get/export/compact` inspect and maintain it, and a stored
/// graph pipes back into `analyze` unchanged.
#[test]
fn precompute_and_store_subcommands_round_trip() {
    let dir = std::env::temp_dir().join(format!("graphio_cli_store_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let store = dir.to_str().unwrap().to_string();
    let corpus = format!(
        "{}\n\n{}",
        generate("fft", 3).trim_end(),
        generate("inner", 3)
    );

    let (_, stderr, ok) = run_with_stdin(&["precompute", "--store", &store], &corpus);
    assert!(ok, "precompute failed: {stderr}");
    assert!(
        stderr.contains("precomputed 2 graph(s) (0 already stored)"),
        "{stderr}"
    );
    // Line numbers in progress output account for the blank line.
    assert!(
        stderr.contains("line 1:") && stderr.contains("line 3:"),
        "{stderr}"
    );

    // Idempotent: a second sweep of the same corpus stores nothing new.
    let (_, stderr, ok) = run_with_stdin(&["precompute", "--store", &store], &corpus);
    assert!(ok, "{stderr}");
    assert!(
        stderr.contains("precomputed 0 graph(s) (2 already stored)"),
        "{stderr}"
    );

    let (stat, _, ok) = run_with_stdin(&["store", "stat", "--store", &store], "");
    assert!(ok);
    let doc = graphio::graph::json::parse(&stat).unwrap();
    assert_eq!(doc.get("records").and_then(|v| v.as_f64()), Some(2.0));

    let (ls, _, ok) = run_with_stdin(&["store", "ls", "--store", &store], "");
    assert!(ok);
    assert_eq!(ls.lines().count(), 2, "{ls}");
    assert!(ls.contains("spectra=2") && ls.contains("cuts=1"), "{ls}");

    // `store get` emits the stored graph as plain edge-list JSON.
    let fp = ls
        .lines()
        .next()
        .unwrap()
        .split('\t')
        .next()
        .unwrap()
        .to_string();
    let (graph_json, stderr, ok) = run_with_stdin(
        &["store", "get", "--store", &store, "--fingerprint", &fp],
        "",
    );
    assert!(ok, "{stderr}");
    let el = graphio::graph::EdgeListGraph::from_json(&graph_json).unwrap();
    assert!(!el.ops.is_empty());
    let (stdout, stderr, ok) =
        run_with_stdin(&["analyze", "--memory-sweep", "2,4", "--json"], &graph_json);
    assert!(ok, "stored graph must re-analyze: {stderr}");
    assert!(stdout.contains("\"sweep\""));

    let (export, _, ok) = run_with_stdin(&["store", "export", "--store", &store], "");
    assert!(ok);
    assert_eq!(export.lines().count(), 2);
    for line in export.lines() {
        graphio::graph::EdgeListGraph::from_json(line).expect("export lines are graph JSON");
    }

    let (out, _, ok) = run_with_stdin(&["store", "compact", "--store", &store], "");
    assert!(ok);
    assert!(out.contains("compacted:"), "{out}");

    // Unknown fingerprints fail cleanly.
    let (_, stderr, ok) = run_with_stdin(
        &[
            "store",
            "get",
            "--store",
            &store,
            "--fingerprint",
            &"0".repeat(32),
        ],
        "",
    );
    assert!(!ok);
    assert!(stderr.contains("no record for fingerprint"), "{stderr}");
    std::fs::remove_dir_all(&dir).unwrap();
}

/// Full process-level round trip: `graphio serve` on an ephemeral port,
/// driven by `graphio client`, diffed against offline `analyze --json`.
#[test]
fn serve_and_client_round_trip_matches_offline_analyze() {
    use std::io::{BufRead as _, BufReader};

    let mut server = cli()
        .args(["serve", "--port", "0", "--workers", "2"])
        .stdout(Stdio::piped())
        .stderr(Stdio::null())
        .spawn()
        .expect("spawn graphio serve");
    let mut first_line = String::new();
    BufReader::new(server.stdout.as_mut().expect("stdout piped"))
        .read_line(&mut first_line)
        .expect("read listen line");
    let url = first_line
        .trim()
        .strip_prefix("graphio service listening on ")
        .unwrap_or_else(|| panic!("unexpected banner: {first_line}"))
        .to_string();

    let result = std::panic::catch_unwind(|| {
        let mut offline_all = String::new();
        let mut graphs_ndjson = String::new();
        for family in ["fft", "bhk", "inner"] {
            let json = generate(family, 4);
            let (offline, stderr, ok) =
                run_with_stdin(&["analyze", "--memory-sweep", "2,4,8", "--json"], &json);
            assert!(ok, "offline analyze failed: {stderr}");
            for round in 0..2 {
                let (remote, stderr, ok) = run_with_stdin(
                    &[
                        "client",
                        "analyze",
                        "--url",
                        &url,
                        "--memory-sweep",
                        "2,4,8",
                    ],
                    &json,
                );
                assert!(ok, "client analyze failed: {stderr}");
                assert_eq!(remote, offline, "{family} round {round} diverged");
            }
            offline_all.push_str(&offline);
            graphs_ndjson.push_str(json.trim_end());
            graphs_ndjson.push('\n');
        }

        // `client batch`: all three graphs in one request, response
        // bit-identical to the concatenated per-graph offline outputs.
        let (batched, stderr, ok) = run_with_stdin(
            &["client", "batch", "--url", &url, "--memory-sweep", "2,4,8"],
            &graphs_ndjson,
        );
        assert!(ok, "client batch failed: {stderr}");
        assert_eq!(batched, offline_all, "batch diverged from offline concat");

        // `--keep-alive --repeat`: several requests on one connection.
        let json = generate("fft", 4);
        let (body, stderr, ok) = run_with_stdin(
            &[
                "client",
                "analyze",
                "--url",
                &url,
                "--memory-sweep",
                "2,4,8",
                "--keep-alive",
                "--repeat",
                "3",
            ],
            &json,
        );
        assert!(ok, "keep-alive analyze failed: {stderr}");
        assert!(
            stderr.contains("3 requests over 1 connection(s)"),
            "expected connection reuse: {stderr}"
        );
        assert!(!body.is_empty());

        let (stats, _, ok) = run_with_stdin(&["client", "stats", "--url", &url], "");
        assert!(ok);
        let doc = graphio::graph::json::parse(&stats).unwrap();
        let misses = doc
            .get("engine")
            .and_then(|e| e.get("spectrum_misses"))
            .and_then(|v| v.as_f64())
            .unwrap();
        // 3 cached sessions × 2 Laplacian kinds, across every analyze
        // and batch call above (fft/4 repeats an already-cached graph).
        assert_eq!(misses, 6.0, "{stats}");
        let requests = doc.get("requests").and_then(|v| v.as_f64()).unwrap();
        let connections = doc.get("connections").and_then(|v| v.as_f64()).unwrap();
        assert!(
            requests > connections,
            "keep-alive must show reuse: {requests} requests / {connections} connections"
        );
    });
    let _ = server.kill();
    let _ = server.wait();
    if let Err(p) = result {
        std::panic::resume_unwind(p);
    }
}

/// Satellite regression: a batch rejection must name the *stdin line*
/// of the offending entry, not just the post-filtering array index —
/// blank NDJSON lines make the two diverge.
#[test]
fn client_batch_error_names_the_offending_stdin_line() {
    use std::io::{BufRead as _, BufReader};

    let mut server = cli()
        .args(["serve", "--port", "0", "--workers", "2"])
        .stdout(Stdio::piped())
        .stderr(Stdio::null())
        .spawn()
        .expect("spawn graphio serve");
    let mut first_line = String::new();
    BufReader::new(server.stdout.as_mut().expect("stdout piped"))
        .read_line(&mut first_line)
        .expect("read listen line");
    let url = first_line
        .trim()
        .strip_prefix("graphio service listening on ")
        .unwrap_or_else(|| panic!("unexpected banner: {first_line}"))
        .to_string();

    let result = std::panic::catch_unwind(|| {
        // Entry index 1 sits on stdin line 4 (blank lines in between).
        let bad_graph = "{\"ops\":[\"in\"],\"edges\":[[0,5]]}";
        let ndjson = format!("{}\n\n\n{bad_graph}\n", generate("fft", 3).trim_end());
        let (_, stderr, ok) = run_with_stdin(
            &["client", "batch", "--url", &url, "--memory-sweep", "2,4"],
            &ndjson,
        );
        assert!(!ok, "batch with an invalid entry must fail");
        assert!(
            stderr.contains("graphs[1]"),
            "index blame expected: {stderr}"
        );
        assert!(
            stderr.contains("(stdin line 4)"),
            "stdin line blame expected: {stderr}"
        );
    });
    let _ = server.kill();
    let _ = server.wait();
    if let Err(p) = result {
        std::panic::resume_unwind(p);
    }
}

/// Satellite regression: `precompute --jobs N` parallelizes corpus
/// warming but must keep line-numbered reporting deterministic —
/// progress lines in input order, and the *first* bad line (in input
/// order) blamed regardless of which worker hit an error first.
#[test]
fn precompute_jobs_is_parallel_but_deterministic() {
    let dir = std::env::temp_dir().join(format!("graphio_cli_jobs_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let store = dir.to_str().unwrap().to_string();
    let corpus = format!(
        "{}\n{}\n{}",
        generate("fft", 3).trim_end(),
        generate("inner", 3).trim_end(),
        generate("diamond", 3).trim_end(),
    );
    let (_, stderr, ok) =
        run_with_stdin(&["precompute", "--store", &store, "--jobs", "4"], &corpus);
    assert!(ok, "precompute --jobs failed: {stderr}");
    assert!(
        stderr.contains("precomputed 3 graph(s) (0 already stored)"),
        "{stderr}"
    );
    // Progress lines appear in input order even though the lines were
    // warmed concurrently.
    let positions: Vec<usize> = (1..=3)
        .map(|i| {
            stderr
                .find(&format!("line {i}:"))
                .unwrap_or_else(|| panic!("line {i} missing: {stderr}"))
        })
        .collect();
    assert!(
        positions[0] < positions[1] && positions[1] < positions[2],
        "{stderr}"
    );

    // Two bad lines: the one earliest in input order wins the blame at
    // every job count.
    let bad_corpus = format!(
        "{}\nnot json\n{}\nalso not json\n",
        generate("fft", 3).trim_end(),
        generate("inner", 3).trim_end(),
    );
    for jobs in ["1", "4"] {
        let (_, stderr, ok) = run_with_stdin(
            &["precompute", "--store", &store, "--jobs", jobs],
            &bad_corpus,
        );
        assert!(!ok, "bad corpus must fail (--jobs {jobs})");
        assert!(
            stderr.contains("error: stdin line 2: invalid graph JSON"),
            "--jobs {jobs}: {stderr}"
        );
        assert!(
            !stderr.contains("stdin line 4"),
            "only the first bad line is blamed (--jobs {jobs}): {stderr}"
        );
    }
    let _ = std::fs::remove_dir_all(&dir);
}

/// End-to-end smoke of the cluster tier through real process boundaries:
/// `graphio cluster` spawns N serve children plus a router, and an
/// analyze through the router is byte-identical to the offline path.
#[test]
fn cluster_spawns_backends_and_routes_byte_identically() {
    use std::io::{BufRead as _, BufReader};
    let mut cluster = cli()
        .args([
            "cluster",
            "--backends",
            "2",
            "--listen",
            "127.0.0.1:0",
            "--workers",
            "1",
        ])
        .stdout(Stdio::piped())
        .spawn()
        .expect("spawn graphio cluster");
    let mut reader = BufReader::new(cluster.stdout.take().expect("stdout piped"));
    let mut backend_pids = Vec::new();
    let router_url = loop {
        let mut line = String::new();
        if reader.read_line(&mut line).unwrap_or(0) == 0 {
            let _ = cluster.kill();
            panic!("cluster exited before the router came up");
        }
        if let Some(rest) = line.trim().strip_prefix("cluster backend ") {
            let pid = rest
                .split("pid=")
                .nth(1)
                .and_then(|p| p.trim().parse::<u32>().ok())
                .expect("pid in backend line");
            backend_pids.push(pid);
        } else if let Some(url) = line.trim().strip_prefix("graphio router listening on ") {
            break url.to_string();
        }
    };
    let result = std::panic::catch_unwind(|| {
        assert_eq!(
            backend_pids.len(),
            2,
            "two backend lines before the router line"
        );
        let graph = generate("fft", 4);
        let (offline, _, ok) =
            run_with_stdin(&["analyze", "--memory-sweep", "2,4", "--json"], &graph);
        assert!(ok);
        let (via_router, stderr, ok) = run_with_stdin(
            &[
                "client",
                "analyze",
                "--url",
                &router_url,
                "--memory-sweep",
                "2,4",
            ],
            &graph,
        );
        assert!(ok, "analyze via router failed: {stderr}");
        assert_eq!(via_router, offline, "router must serve offline bytes");
    });
    let _ = cluster.kill();
    let _ = cluster.wait();
    for pid in backend_pids {
        // The cluster helper's children outlive a kill -9 of the helper;
        // reap them explicitly like any harness must.
        let _ = Command::new("kill").args(["-9", &pid.to_string()]).status();
    }
    if let Err(p) = result {
        std::panic::resume_unwind(p);
    }
}
