//! End-to-end tests of the `graphio` CLI binary (generate → bound /
//! simulate / dot pipelines through real process boundaries).

use std::io::Write as _;
use std::process::{Command, Stdio};

fn cli() -> Command {
    Command::new(env!("CARGO_BIN_EXE_graphio"))
}

fn generate(family: &str, size: usize) -> String {
    let out = cli()
        .args(["generate", family, &size.to_string()])
        .output()
        .expect("spawn graphio generate");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    String::from_utf8(out.stdout).expect("utf8 json")
}

fn run_with_stdin(args: &[&str], stdin_data: &str) -> (String, String, bool) {
    let mut child = cli()
        .args(args)
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("spawn graphio");
    child
        .stdin
        .as_mut()
        .expect("stdin piped")
        .write_all(stdin_data.as_bytes())
        .expect("write stdin");
    let out = child.wait_with_output().expect("wait");
    (
        String::from_utf8_lossy(&out.stdout).to_string(),
        String::from_utf8_lossy(&out.stderr).to_string(),
        out.status.success(),
    )
}

#[test]
fn generate_emits_parseable_edge_list() {
    let json = generate("fft", 3);
    let el = graphio::graph::EdgeListGraph::from_json(&json).unwrap();
    assert_eq!(el.ops.len(), 4 * 8);
    assert_eq!(el.edges.len(), 2 * 3 * 8);
}

#[test]
fn bound_pipeline_reports_both_bounds() {
    let json = generate("fft", 5);
    let (stdout, stderr, ok) = run_with_stdin(&["bound", "--memory", "4"], &json);
    assert!(ok, "stderr: {stderr}");
    assert!(stdout.contains("spectral lower bound:"), "{stdout}");
    assert!(stdout.contains("convex min-cut bound:"), "{stdout}");
}

#[test]
fn simulate_pipeline_reports_io() {
    let json = generate("diamond", 4);
    let (stdout, _, ok) = run_with_stdin(
        &[
            "simulate", "--memory", "4", "--policy", "belady", "--order", "dfs",
        ],
        &json,
    );
    assert!(ok);
    assert!(stdout.contains("simulated I/O:"), "{stdout}");
}

#[test]
fn simulate_rejects_infeasible_memory() {
    let json = generate("matmul", 3);
    // matmul n=3 has 3-ary sums: needs M >= 4.
    let (_, stderr, ok) = run_with_stdin(&["simulate", "--memory", "3"], &json);
    assert!(!ok);
    assert!(stderr.contains("simulation failed"), "{stderr}");
}

#[test]
fn analyze_sweep_reports_every_memory_and_one_eigensolve() {
    let json = generate("fft", 5);
    let (stdout, stderr, ok) = run_with_stdin(
        &["analyze", "--memory-sweep", "2,4,8,16", "--threads", "2"],
        &json,
    );
    assert!(ok, "stderr: {stderr}");
    for m in ["2", "4", "8", "16"] {
        assert!(
            stdout.lines().any(|l| l.trim_start().starts_with(m)),
            "missing row for M={m} in:\n{stdout}"
        );
    }
    // One Analyzer session, two Laplacian kinds (Thm4 + Thm5) -> exactly
    // two eigensolves however many memory sizes were swept.
    assert!(
        stdout.contains("eigensolves: 2"),
        "expected one eigensolve per Laplacian kind:\n{stdout}"
    );
}

#[test]
fn analyze_json_output_is_parseable_and_complete() {
    let json = generate("bhk", 5);
    let (stdout, stderr, ok) = run_with_stdin(
        &[
            "analyze",
            "--memory-sweep",
            "2,4,8",
            "--processors",
            "4",
            "--json",
        ],
        &json,
    );
    assert!(ok, "stderr: {stderr}");
    let doc = graphio::graph::json::parse(&stdout).expect("analyze --json must emit valid JSON");
    let sweep = doc.get("sweep").and_then(|s| s.as_array()).unwrap();
    assert_eq!(sweep.len(), 3);
    for row in sweep {
        assert!(row.get("memory").is_some());
        assert!(row.get("thm4").is_some());
        assert!(row.get("thm5").is_some());
        assert!(row.get("thm6").is_some());
        assert!(row.get("mincut").is_some());
        assert!(row.get("sim_upper").is_some());
    }
    assert_eq!(doc.get("eigensolves").and_then(|v| v.as_f64()), Some(2.0));
}

#[test]
fn dot_pipeline_renders_graphviz() {
    let json = generate("inner", 2);
    let (stdout, _, ok) = run_with_stdin(&["dot"], &json);
    assert!(ok);
    assert!(stdout.starts_with("digraph"));
    assert!(stdout.contains("->"));
}

#[test]
fn malformed_json_fails_cleanly() {
    let (_, stderr, ok) = run_with_stdin(&["bound", "--memory", "4"], "{not json");
    assert!(!ok);
    assert!(stderr.contains("error parsing graph JSON"));
}

#[test]
fn unknown_family_prints_usage() {
    let out = cli().args(["generate", "mystery", "3"]).output().unwrap();
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("usage"));
}
