//! End-to-end pipeline tests: tracing, serialization, and bound equality
//! across representations.

use graphio::graph::trace::{trace_fft, trace_inner_product, trace_naive_matmul};
use graphio::graph::EdgeListGraph;
use graphio::prelude::*;

#[test]
fn traced_programs_get_identical_bounds_to_generators() {
    let m = 4;
    let pairs: Vec<(CompGraph, CompGraph)> = vec![
        (trace_fft(4), fft_butterfly(4)),
        (trace_inner_product(4), inner_product(4)),
        (trace_naive_matmul(2), naive_matmul(2)),
    ];
    for (traced, generated) in pairs {
        let bt = spectral_bound(&traced, m, &BoundOptions::default()).unwrap();
        let bg = spectral_bound(&generated, m, &BoundOptions::default()).unwrap();
        assert!(
            (bt.bound - bg.bound).abs() < 1e-9,
            "traced {} vs generated {}",
            bt.bound,
            bg.bound
        );
        assert_eq!(bt.best_k, bg.best_k);
    }
}

#[test]
fn json_roundtrip_preserves_graph_and_bound() {
    let g = strassen_matmul(2);
    let json = g.to_edge_list().to_json();
    let el = EdgeListGraph::from_json(&json).unwrap();
    let g2 = CompGraph::try_from(el).unwrap();
    assert_eq!(g.n(), g2.n());
    assert_eq!(g.num_edges(), g2.num_edges());
    let m = 4;
    let b1 = spectral_bound(&g, m, &BoundOptions::default()).unwrap();
    let b2 = spectral_bound(&g2, m, &BoundOptions::default()).unwrap();
    assert!((b1.bound - b2.bound).abs() < 1e-9);
}

#[test]
fn custom_graph_via_builder_end_to_end() {
    // Build a small pipeline by hand, bound it, simulate it.
    let mut b = GraphBuilder::new();
    let xs: Vec<u32> = (0..6).map(|_| b.add_vertex(OpKind::Input)).collect();
    let mut layer = xs;
    while layer.len() > 1 {
        let mut next = Vec::new();
        for pair in layer.chunks(2) {
            if pair.len() == 2 {
                let v = b.add_vertex(OpKind::Add);
                b.add_edge(pair[0], v);
                b.add_edge(pair[1], v);
                next.push(v);
            } else {
                next.push(pair[0]);
            }
        }
        layer = next;
    }
    let g = b.build().unwrap();
    let m = 3;
    let lower = spectral_bound(&g, m, &BoundOptions::default()).unwrap();
    let order = graphio::graph::topo::dfs_order(&g);
    let upper = simulate(&g, &order, m, Policy::Belady, 0).unwrap();
    assert!(lower.bound <= upper.io() as f64);
}

#[test]
fn dense_and_lanczos_paths_agree_through_public_api() {
    let g = bhk_hypercube(6); // n = 64
    let m = 4;
    let dense = spectral_bound(
        &g,
        m,
        &BoundOptions {
            method: EigenMethod::Dense,
            ..Default::default()
        },
    )
    .unwrap();
    let lanczos = spectral_bound(
        &g,
        m,
        &BoundOptions {
            method: EigenMethod::Lanczos(Default::default()),
            ..Default::default()
        },
    )
    .unwrap();
    assert!(
        (dense.bound - lanczos.bound).abs() < 1e-5 * (1.0 + dense.bound),
        "dense {} vs lanczos {}",
        dense.bound,
        lanczos.bound
    );
}

#[test]
fn tracer_handles_nontrivial_control_flow() {
    // A traced loop with data-dependent-looking (but static) structure:
    // cumulative sums followed by a pairwise product reduction.
    let tracer = Tracer::new();
    let xs = tracer.inputs(8);
    let mut prefix = xs[0].clone();
    let mut sums = vec![prefix.clone()];
    for x in &xs[1..] {
        prefix = &prefix + x;
        sums.push(prefix.clone());
    }
    let mut acc = &sums[0] * &sums[1];
    for pair in sums[2..].chunks(2) {
        if pair.len() == 2 {
            acc = acc + &pair[0] * &pair[1];
        }
    }
    let g = tracer.finish();
    assert!(g.is_topological(&graphio::graph::topo::natural_order(&g)));
    let b = spectral_bound(&g, 3, &BoundOptions::default()).unwrap();
    let order = graphio::graph::topo::natural_order(&g);
    let sim = simulate(&g, &order, 3, Policy::Lru, 0).unwrap();
    assert!(b.bound <= sim.io() as f64);
}
