//! Cross-crate soundness: every lower bound must sit below the true
//! optimum, which in turn sits below every simulated execution.
//!
//! `spectral (Thm 4/5/6), convex min-cut  ≤  J* (exact oracle)  ≤  simulate(any order, any policy)`

use graphio::graph::topo::{natural_order, random_order};
use graphio::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Tiny graphs where the exact oracle is tractable, with a feasible M.
fn tiny_cases() -> Vec<(&'static str, CompGraph, usize)> {
    vec![
        ("inner_product(2)", inner_product(2), 3),
        ("inner_product(2) M=4", inner_product(2), 4),
        ("diamond 3x3", diamond_dag(3, 3), 3),
        ("diamond 4x3", diamond_dag(4, 3), 4),
        ("fft l=2", fft_butterfly(2), 3),
        ("bhk l=3", bhk_hypercube(3), 4),
        ("matmul n=2 M=4", naive_matmul(2), 4),
    ]
}

#[test]
fn lower_bounds_do_not_exceed_exact_optimum() {
    for (name, g, m) in tiny_cases() {
        let exact = exact_optimal_io(&g, m, 10_000_000).unwrap().io as f64;
        let thm4 = spectral_bound(&g, m, &BoundOptions::default()).unwrap();
        let thm5 = spectral_bound_original(&g, m, &BoundOptions::default()).unwrap();
        let mc = convex_min_cut_bound(&g, m, &ConvexMinCutOptions::default());
        assert!(
            thm4.bound <= exact + 1e-9,
            "{name}: Thm4 {} > exact {exact}",
            thm4.bound
        );
        assert!(
            thm5.bound <= exact + 1e-9,
            "{name}: Thm5 {} > exact {exact}",
            thm5.bound
        );
        assert!(
            (mc.bound as f64) <= exact + 1e-9,
            "{name}: min-cut {} > exact {exact}",
            mc.bound
        );
    }
}

#[test]
fn exact_optimum_does_not_exceed_any_simulation() {
    let mut rng = StdRng::seed_from_u64(2024);
    for (name, g, m) in tiny_cases() {
        let exact = exact_optimal_io(&g, m, 10_000_000).unwrap().io;
        let mut orders = vec![natural_order(&g)];
        for _ in 0..5 {
            orders.push(random_order(&g, &mut rng));
        }
        for order in &orders {
            for policy in Policy::ALL {
                let sim = simulate(&g, order, m, policy, 7).unwrap();
                assert!(
                    exact <= sim.io(),
                    "{name}: exact {exact} > sim {} ({policy})",
                    sim.io()
                );
            }
        }
    }
}

#[test]
fn lower_bounds_stay_below_simulations_on_medium_graphs() {
    // Exact is intractable here; simulations still upper-bound J*.
    let cases: Vec<(&str, CompGraph, usize)> = vec![
        ("fft l=5", fft_butterfly(5), 4),
        ("bhk l=6", bhk_hypercube(6), 8),
        ("matmul n=3", naive_matmul(3), 6),
        ("strassen n=4", strassen_matmul(4), 8),
    ];
    let mut rng = StdRng::seed_from_u64(99);
    for (name, g, m) in cases {
        let thm4 = spectral_bound(&g, m, &BoundOptions::default()).unwrap();
        let mc = convex_min_cut_bound(&g, m, &ConvexMinCutOptions::default());
        let lower = thm4.bound.max(mc.bound as f64);
        for _ in 0..3 {
            let order = random_order(&g, &mut rng);
            for policy in [Policy::Lru, Policy::Belady] {
                let sim = simulate(&g, &order, m, policy, 1).unwrap();
                assert!(
                    lower <= sim.io() as f64 + 1e-9,
                    "{name}: lower {lower} > sim {}",
                    sim.io()
                );
            }
        }
    }
}

#[test]
fn parallel_bound_is_sound_against_serial_executions() {
    // A single processor is a special case of p processors, so the
    // parallel per-processor bound with any p must stay below a serial
    // execution's I/O.
    let g = fft_butterfly(5);
    let m = 4;
    let order = natural_order(&g);
    let sim = simulate(&g, &order, m, Policy::Belady, 0).unwrap();
    for p in [1usize, 2, 4] {
        let b = parallel_spectral_bound(&g, m, p, &BoundOptions::default()).unwrap();
        assert!(
            b.bound <= sim.io() as f64,
            "p={p}: {} > {}",
            b.bound,
            sim.io()
        );
    }
}

#[test]
fn theorem2_partition_costs_are_certified_lower_bounds() {
    // For any concrete order X and any k, the Lemma 1 / Theorem 2 costs
    // lower-bound that order's simulated I/O.
    use graphio::spectral::partition::{edge_partition_cost, rs_ws_partition_cost};
    let g = fft_butterfly(4);
    let m = 4;
    let mut rng = StdRng::seed_from_u64(5);
    for _ in 0..5 {
        let order = random_order(&g, &mut rng);
        let sim = simulate(&g, &order, m, Policy::Belady, 0).unwrap();
        for k in [2usize, 4, 8, 16] {
            let ec = edge_partition_cost(&g, &order, k, m);
            let rw = rs_ws_partition_cost(&g, &order, k, m);
            assert!(ec <= rw + 1e-9, "edge cost must relax Lemma 1");
            assert!(
                rw <= sim.io() as f64 + 1e-9,
                "k={k}: Lemma-1 cost {rw} > simulated {}",
                sim.io()
            );
        }
    }
}
