#![allow(clippy::needless_range_loop)] // index-parallel array comparisons read clearest

//! Closed-form spectra (§5 / Appendix A) against the numeric eigensolvers
//! at sizes beyond the in-crate unit tests, exercising the full
//! CSR + deflated-Lanczos pipeline.

use graphio::prelude::*;
use graphio::spectral::closed_form::butterfly::butterfly_smallest_eigenvalues;
use graphio::spectral::closed_form::hypercube::hypercube_smallest_eigenvalues;
use graphio::spectral::laplacian::{normalized_laplacian, unnormalized_laplacian};
use graphio_linalg::{lanczos, LanczosOptions};

#[test]
fn butterfly_spectrum_matches_lanczos_at_l7() {
    // B_7: 1024 vertices — dense would be slow in debug; Lanczos handles it.
    let l = 7;
    let g = fft_butterfly(l);
    let lap = unnormalized_laplacian(&g);
    let h = 25;
    let numeric = lanczos::smallest_eigenvalues(&lap, h, &LanczosOptions::default()).unwrap();
    let closed = butterfly_smallest_eigenvalues(l, h);
    for i in 0..h {
        assert!(
            (closed[i] - numeric.values[i]).abs() < 1e-6,
            "i={i}: closed {} vs lanczos {}",
            closed[i],
            numeric.values[i]
        );
    }
}

#[test]
fn hypercube_spectrum_matches_lanczos_at_l10() {
    let l = 10;
    let g = bhk_hypercube(l);
    let lap = unnormalized_laplacian(&g);
    let h = 15;
    let numeric = lanczos::smallest_eigenvalues(&lap, h, &LanczosOptions::default()).unwrap();
    let closed = hypercube_smallest_eigenvalues(l, h);
    for i in 0..h {
        assert!(
            (closed[i] - numeric.values[i]).abs() < 1e-6,
            "i={i}: closed {} vs lanczos {}",
            closed[i],
            numeric.values[i]
        );
    }
}

#[test]
fn butterfly_normalized_laplacian_is_half_the_plain_one() {
    // Every butterfly non-sink has out-degree exactly 2, so L̃ = L/2 —
    // a structural identity that ties the two Laplacian builders together.
    let g = fft_butterfly(4);
    let lt = normalized_laplacian(&g);
    let l = unnormalized_laplacian(&g);
    for i in 0..g.n() {
        for &j in g.children(i) {
            let j = j as usize;
            assert!((lt.get(i, j) - l.get(i, j) / 2.0).abs() < 1e-12);
        }
        assert!((lt.get(i, i) - l.get(i, i) / 2.0).abs() < 1e-12);
    }
}

#[test]
fn closed_form_bounds_dominate_chain_holds_numerically() {
    // closed-form (specific α) ≤ closed-form (best α) ≤ Theorem 5 numeric
    // ≤ Theorem 4 numeric — the full dominance chain of the paper's
    // machinery, evaluated end to end on the hypercube.
    use graphio::spectral::closed_form::hypercube::{
        hypercube_bound_best_alpha, hypercube_closed_form_bound,
    };
    let l = 8;
    let g = bhk_hypercube(l);
    for m in [2usize, 4, 8] {
        let alpha1 = hypercube_closed_form_bound(l, m, 1).max(0.0);
        let best = hypercube_bound_best_alpha(l, m);
        let thm5 = spectral_bound_original(&g, m, &BoundOptions::default()).unwrap();
        let thm4 = spectral_bound(&g, m, &BoundOptions::default()).unwrap();
        assert!(alpha1 <= best + 1e-9, "M={m}");
        assert!(best <= thm5.bound + 1e-6, "M={m}: {best} > {}", thm5.bound);
        assert!(
            thm5.bound <= thm4.bound + 1e-6,
            "M={m}: {} > {}",
            thm5.bound,
            thm4.bound
        );
    }
}

#[test]
fn erdos_renyi_lambda2_concentrates_near_prediction() {
    use graphio::spectral::closed_form::erdos_renyi::{lambda2_sparse_estimate, sparse_p};
    let n = 300;
    let p0 = 12.0;
    let p = sparse_p(n, p0);
    let mut ratios = Vec::new();
    for seed in 0..5 {
        let g = erdos_renyi_dag(n, p, seed);
        let lap = unnormalized_laplacian(&g);
        let eigs = lanczos::smallest_eigenvalues(&lap, 2, &LanczosOptions::default()).unwrap();
        ratios.push(eigs.values[1] / lambda2_sparse_estimate(n, p0));
    }
    let mean: f64 = ratios.iter().sum::<f64>() / ratios.len() as f64;
    // Leading-order estimate: expect agreement within ~25% at n = 300.
    assert!(
        (mean - 1.0).abs() < 0.25,
        "λ2 concentration ratio {mean} (ratios {ratios:?})"
    );
}
