//! Failure-injection tests: every error path a downstream user can hit
//! must surface as a typed error (never a panic or a silent wrong answer).

use graphio::graph::{EdgeListGraph, GraphError, OpKind};
use graphio::linalg::lanczos::{smallest_eigenvalues, LanczosOptions};
use graphio::linalg::{CsrMatrix, LinalgError};
use graphio::pebble::SimError;
use graphio::prelude::*;

#[test]
fn deserializing_corrupt_edge_lists_fails_typed() {
    // Edge referencing a vertex beyond ops.len().
    let el = EdgeListGraph {
        ops: vec![OpKind::Input, OpKind::Add],
        edges: vec![(0, 5)],
    };
    assert_eq!(
        CompGraph::try_from(el).unwrap_err(),
        GraphError::InvalidVertex { id: 5, n: 2 }
    );
    // Self-loop.
    let el = EdgeListGraph {
        ops: vec![OpKind::Add],
        edges: vec![(0, 0)],
    };
    assert_eq!(
        CompGraph::try_from(el).unwrap_err(),
        GraphError::SelfLoop { id: 0 }
    );
    // Cycle smuggled through the portable format.
    let el = EdgeListGraph {
        ops: vec![OpKind::Add, OpKind::Add],
        edges: vec![(0, 1), (1, 0)],
    };
    assert!(matches!(
        CompGraph::try_from(el).unwrap_err(),
        GraphError::Cycle { .. }
    ));
}

#[test]
fn lanczos_budget_exhaustion_is_reported_not_wrong() {
    // One sweep of size 2 cannot resolve 6 eigenvalues of a 64-dim
    // operator: must error, never return a short/garbage spectrum.
    let g = bhk_hypercube(6);
    let lap = graphio::spectral::laplacian::normalized_laplacian(&g);
    let opts = LanczosOptions {
        subspace: 2,
        max_sweeps: 1,
        ..Default::default()
    };
    match smallest_eigenvalues(&lap, 6, &opts) {
        Err(LinalgError::NoConvergence { algorithm, .. }) => {
            assert_eq!(algorithm, "deflated Lanczos");
        }
        other => panic!("expected NoConvergence, got {other:?}"),
    }
}

#[test]
fn eigensolver_rejects_asymmetric_input() {
    use graphio::linalg::{eigenvalues_symmetric, DenseMatrix};
    let a = DenseMatrix::from_rows(&[&[0.0, 1.0], &[2.0, 0.0]]);
    assert!(matches!(
        eigenvalues_symmetric(&a),
        Err(LinalgError::NotSymmetric { .. })
    ));
}

#[test]
fn csr_rejects_out_of_range_triplets() {
    assert!(matches!(
        CsrMatrix::from_triplets(3, &[(0, 7, 1.0)]),
        Err(LinalgError::InvalidInput(_))
    ));
}

#[test]
fn simulator_surfaces_both_precondition_failures() {
    let g = naive_matmul(2);
    let order = graphio::graph::topo::natural_order(&g);
    // Too little memory for the 2-ary sums (needs 3 slots).
    assert!(matches!(
        simulate(&g, &order, 2, Policy::Lru, 0),
        Err(SimError::MemoryTooSmall { .. })
    ));
    // Reversed order.
    let mut rev = order.clone();
    rev.reverse();
    assert_eq!(
        simulate(&g, &rev, 8, Policy::Lru, 0).unwrap_err(),
        SimError::OrderNotTopological
    );
}

#[test]
fn exact_oracle_guards_its_domain() {
    use graphio::baselines::{exact_optimal_io, ExactError};
    let big = fft_butterfly(4); // 80 vertices > 26
    assert!(matches!(
        exact_optimal_io(&big, 8, 1_000_000),
        Err(ExactError::TooLarge { .. })
    ));
    let small = inner_product(2);
    assert!(matches!(
        exact_optimal_io(&small, 2, 1_000_000),
        Err(ExactError::MemoryTooSmall { .. })
    ));
    assert!(matches!(
        exact_optimal_io(&diamond_dag(4, 4), 3, 5),
        Err(ExactError::BudgetExhausted { .. })
    ));
}

#[test]
fn bound_with_h_larger_than_n_is_clamped_not_failing() {
    let g = inner_product(2); // n = 7
    let b = spectral_bound(
        &g,
        1,
        &BoundOptions {
            h: 10_000,
            ..Default::default()
        },
    )
    .unwrap();
    assert_eq!(b.eigenvalues.len(), 7);
}

#[test]
fn empty_graph_bounds_are_trivial_everywhere() {
    let g = GraphBuilder::new().build().unwrap();
    let b = spectral_bound(&g, 4, &BoundOptions::default()).unwrap();
    assert_eq!(b.bound, 0.0);
    let mc = convex_min_cut_bound(&g, 4, &ConvexMinCutOptions::default());
    assert_eq!(mc.bound, 0);
    let r = simulate(&g, &[], 1, Policy::Lru, 0).unwrap();
    assert_eq!(r.io(), 0);
}

#[test]
fn error_types_render_useful_messages() {
    let msgs = [
        GraphError::Cycle { remaining: 3 }.to_string(),
        SimError::MemoryTooSmall {
            vertex: 1,
            required: 4,
            memory: 2,
        }
        .to_string(),
        LinalgError::NoConvergence {
            algorithm: "x",
            iterations: 9,
        }
        .to_string(),
    ];
    for m in msgs {
        assert!(!m.is_empty());
        assert!(m.is_ascii() || m.chars().count() > 4);
    }
}
