//! Offline, std-only subset of the `rand` crate API used by `graphio`.
//!
//! The generator behind [`rngs::StdRng`] is SplitMix64 — not
//! cryptographic, but statistically solid and more than adequate for the
//! seeded graph generators, Lanczos start vectors and sampling sweeps in
//! this workspace. Determinism contract: a given seed always produces the
//! same stream, on every platform.

use std::ops::{Range, RangeInclusive};

pub mod rngs;
pub mod seq;

/// Raw 64-bit generator interface.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// User-facing sampling interface, blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    /// Samples a value of type `T` from its standard distribution
    /// (`f64`/`f32` uniform in `[0, 1)`, integers uniform over the full
    /// range, `bool` fair).
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::from_rng(self)
    }

    /// Samples uniformly from `range`.
    ///
    /// # Panics
    /// Panics if the range is empty.
    fn gen_range<T, B: SampleRange<T>>(&mut self, range: B) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        self.gen::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Deterministic construction from a 64-bit seed.
pub trait SeedableRng: Sized {
    /// Builds a generator whose stream is a pure function of `state`.
    fn seed_from_u64(state: u64) -> Self;
}

/// Types samplable by [`Rng::gen`].
pub trait Standard: Sized {
    /// Draws one value from the standard distribution for `Self`.
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u64 {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

impl Standard for usize {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as usize
    }
}

impl Standard for bool {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() >> 63 == 1
    }
}

impl Standard for f64 {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// Ranges samplable by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws one value uniformly from `self`.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Uniform integer in `[0, span)` via the widening-multiply reduction
/// (bias < 2⁻⁶⁴·span, negligible here).
fn uniform_below<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
    debug_assert!(span > 0);
    ((rng.next_u64() as u128 * span as u128) >> 64) as u64
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + uniform_below(rng, span) as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty range");
                let span = (hi as i128 - lo as i128) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                (lo as i128 + uniform_below(rng, span + 1) as i128) as $t
            }
        }
    )*};
}

impl_int_range!(usize, u64, u32, i64, i32);

impl SampleRange<f64> for Range<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "gen_range: empty range");
        self.start + f64::from_rng(rng) * (self.end - self.start)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rngs::StdRng;

    #[test]
    fn deterministic_given_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn unit_floats_are_in_range() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn gen_range_respects_bounds_and_hits_all_values() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut seen = [false; 5];
        for _ in 0..1_000 {
            let v = rng.gen_range(0usize..5);
            seen[v] = true;
        }
        assert!(seen.iter().all(|&s| s));
        for _ in 0..1_000 {
            let v = rng.gen_range(-3i64..=3);
            assert!((-3..=3).contains(&v));
        }
    }

    #[test]
    fn bools_are_roughly_fair() {
        let mut rng = StdRng::seed_from_u64(11);
        let trues = (0..10_000).filter(|_| rng.gen::<bool>()).count();
        assert!((4_000..6_000).contains(&trues), "{trues}");
    }

    #[test]
    fn works_through_mut_references() {
        fn takes_generic<R: Rng>(rng: &mut R) -> f64 {
            rng.gen::<f64>()
        }
        let mut rng = StdRng::seed_from_u64(5);
        let _ = takes_generic(&mut rng);
        let r = &mut rng;
        let _ = takes_generic(r);
    }
}
