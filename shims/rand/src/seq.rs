//! Slice sampling helpers.

use crate::{Rng, RngCore};

/// Random operations on slices.
pub trait SliceRandom {
    /// Element type of the slice.
    type Item;

    /// Shuffles the slice in place (Fisher–Yates).
    fn shuffle<R: RngCore>(&mut self, rng: &mut R);

    /// Returns a uniformly random element, or `None` if empty.
    fn choose<R: RngCore>(&self, rng: &mut R) -> Option<&Self::Item>;
}

impl<T> SliceRandom for [T] {
    type Item = T;

    fn shuffle<R: RngCore>(&mut self, rng: &mut R) {
        for i in (1..self.len()).rev() {
            let j = rng.gen_range(0..=i);
            self.swap(i, j);
        }
    }

    fn choose<R: RngCore>(&self, rng: &mut R) -> Option<&T> {
        if self.is_empty() {
            None
        } else {
            Some(&self[rng.gen_range(0..self.len())])
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rngs::StdRng;
    use crate::SeedableRng;

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut v: Vec<usize> = (0..100).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(v, sorted, "astronomically unlikely identity shuffle");
    }

    #[test]
    fn choose_covers_all_elements() {
        let mut rng = StdRng::seed_from_u64(2);
        let v = [1, 2, 3];
        let mut seen = [false; 3];
        for _ in 0..200 {
            seen[*v.choose(&mut rng).unwrap() - 1] = true;
        }
        assert!(seen.iter().all(|&s| s));
        let empty: [i32; 0] = [];
        assert!(empty.choose(&mut rng).is_none());
    }
}
