//! Offline, std-only subset of the `proptest` API used by `graphio`.
//!
//! Semantics: each `proptest!`-generated test runs `ProptestConfig::cases`
//! random cases from a generator seeded deterministically by the test's
//! module path and name, so failures reproduce exactly on re-run. There is
//! no shrinking — the failure message reports the case index instead.

use std::fmt;
use std::ops::{Range, RangeInclusive};

pub mod bool;
pub mod collection;

/// One-stop imports, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, proptest, Just, ProptestConfig, Strategy,
        TestCaseError, TestRng,
    };
}

/// Per-test configuration.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases to run.
    pub cases: u32,
}

impl ProptestConfig {
    /// Configuration running `cases` random cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// A failed assertion inside a property body.
#[derive(Debug)]
pub struct TestCaseError(String);

impl TestCaseError {
    /// Builds a failure with the given message.
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError(msg.into())
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

/// Deterministic per-test generator (SplitMix64 over an FNV-1a name hash).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seeds the generator from a test's fully qualified name.
    pub fn from_name(name: &str) -> Self {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        TestRng { state: h }
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform integer in `[0, span)`; `span` must be positive.
    pub fn below(&mut self, span: u64) -> u64 {
        debug_assert!(span > 0);
        ((self.next_u64() as u128 * span as u128) >> 64) as u64
    }

    /// Uniform float in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// A generator of random values for one property argument.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value.
    fn new_value(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { source: self, f }
    }

    /// Builds a dependent strategy from each generated value.
    fn prop_flat_map<S2: Strategy, F: Fn(Self::Value) -> S2>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
    {
        FlatMap { source: self, f }
    }
}

/// Always generates a clone of the same value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn new_value(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// See [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    source: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;

    fn new_value(&self, rng: &mut TestRng) -> U {
        (self.f)(self.source.new_value(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
#[derive(Debug, Clone)]
pub struct FlatMap<S, F> {
    source: S,
    f: F,
}

impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
    type Value = S2::Value;

    fn new_value(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.source.new_value(rng)).new_value(rng)
    }
}

macro_rules! impl_int_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn new_value(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(span) as i128) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn new_value(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as i128 - lo as i128) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                (lo as i128 + rng.below(span + 1) as i128) as $t
            }
        }
    )*};
}

impl_int_strategy!(usize, u64, u32, i64, i32);

impl Strategy for Range<f64> {
    type Value = f64;

    fn new_value(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

macro_rules! impl_tuple_strategy {
    ($(($($s:ident . $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn new_value(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.new_value(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy! {
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
}

/// Defines property tests.
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(64))]
///     #[test]
///     fn holds(x in 0usize..10, y in -1.0f64..1.0) { prop_assert!(x < 10); }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { ($crate::ProptestConfig::default()); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($cfg:expr); $($(#[$meta:meta])+ fn $name:ident($($arg:pat in $strat:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])+
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                let mut rng =
                    $crate::TestRng::from_name(concat!(module_path!(), "::", stringify!($name)));
                for case in 0..config.cases {
                    $(let $arg = $crate::Strategy::new_value(&($strat), &mut rng);)+
                    let outcome: ::std::result::Result<(), $crate::TestCaseError> =
                        (|| { $body ::std::result::Result::Ok(()) })();
                    if let ::std::result::Result::Err(e) = outcome {
                        panic!("{} failed at case {}/{}: {}",
                               stringify!($name), case + 1, config.cases, e);
                    }
                }
            }
        )*
    };
}

/// Fails the current property case unless the condition holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

/// Fails the current property case unless both sides are equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: {} == {}\n  left: {:?}\n right: {:?}",
            stringify!($left), stringify!($right), l, r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l == *r, $($fmt)+);
    }};
}

/// Fails the current property case if both sides are equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l != *r,
            "assertion failed: {} != {}\n  both: {:?}",
            stringify!($left),
            stringify!($right),
            l
        );
    }};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use crate::Strategy;

    #[test]
    fn rng_is_deterministic_per_name() {
        let mut a = TestRng::from_name("x::y");
        let mut b = TestRng::from_name("x::y");
        assert_eq!(a.next_u64(), b.next_u64());
        let mut c = TestRng::from_name("x::z");
        let _ = c.next_u64();
    }

    #[test]
    fn map_and_flat_map_compose() {
        let mut rng = TestRng::from_name("compose");
        let s = (1usize..5)
            .prop_flat_map(|n| crate::collection::vec(0usize..10, n).prop_map(move |v| (n, v)));
        for _ in 0..100 {
            let (n, v) = s.new_value(&mut rng);
            assert_eq!(v.len(), n);
            assert!(v.iter().all(|&x| x < 10));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_respect_bounds(x in 3usize..7, y in -2.0f64..2.0, (a, b) in (0u64..4, 1usize..=2)) {
            prop_assert!((3..7).contains(&x));
            prop_assert!((-2.0..2.0).contains(&y));
            prop_assert!(a < 4);
            prop_assert_eq!(b.clamp(1, 2), b);
        }

        #[test]
        fn early_ok_return_is_supported(n in 0usize..10) {
            if n > 100 {
                return Ok(());
            }
            prop_assert!(n < 10);
        }
    }

    // Extra meta attributes pass straight through the macro, so failure
    // behaviour is testable with a plain `should_panic`.
    proptest! {
        #![proptest_config(ProptestConfig::with_cases(8))]
        #[test]
        #[should_panic(expected = "failed at case")]
        fn failures_report_the_case_index(x in 0usize..2) {
            prop_assert!(x > 10, "x was {}", x);
        }
    }
}
