//! Collection strategies.

use crate::{Strategy, TestRng};
use std::ops::Range;

/// Length specification for [`vec`]: an exact length or a half-open range.
#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    min: usize,
    max_exclusive: usize,
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange {
            min: n,
            max_exclusive: n + 1,
        }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty size range");
        SizeRange {
            min: r.start,
            max_exclusive: r.end,
        }
    }
}

/// Strategy producing `Vec`s of values from an element strategy.
#[derive(Debug, Clone)]
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

/// Generates vectors whose length is drawn from `size` and whose elements
/// are drawn from `element`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn new_value(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let span = (self.size.max_exclusive - self.size.min) as u64;
        let len = self.size.min
            + if span > 0 {
                rng.below(span) as usize
            } else {
                0
            };
        (0..len).map(|_| self.element.new_value(rng)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_and_ranged_lengths() {
        let mut rng = TestRng::from_name("vec");
        for _ in 0..50 {
            assert_eq!(vec(0usize..3, 4).new_value(&mut rng).len(), 4);
            let v = vec(0usize..3, 1..6).new_value(&mut rng);
            assert!((1..6).contains(&v.len()));
        }
    }
}
