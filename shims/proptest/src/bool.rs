//! Boolean strategies.

use crate::{Strategy, TestRng};

/// Strategy generating fair booleans (`proptest::bool::ANY`).
#[derive(Debug, Clone, Copy)]
pub struct Any;

/// A fair coin flip.
pub const ANY: Any = Any;

impl Strategy for Any {
    type Value = bool;

    fn new_value(&self, rng: &mut TestRng) -> bool {
        rng.next_u64() >> 63 == 1
    }
}
