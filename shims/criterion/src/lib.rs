//! Offline, std-only subset of the `criterion` API used by `graphio`'s
//! benches (all declared with `harness = false`).
//!
//! Measurement model: per benchmark, run the closure for the configured
//! warm-up time to estimate per-iteration cost, size batches so each
//! sample takes `measurement_time / sample_size`, then report min / mean /
//! max over the samples on stdout:
//!
//! ```text
//! matvec/parallel/4        time: [118.21 µs 120.05 µs 124.77 µs]  (10 samples)
//! ```
//!
//! Positional command-line arguments act as substring filters on the full
//! `group/name` path, mirroring `cargo bench -- <filter>`.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Prevents the optimizer from deleting a benchmark's result.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Benchmark driver handed to `criterion_group!` targets.
pub struct Criterion {
    filters: Vec<String>,
}

impl Default for Criterion {
    fn default() -> Self {
        // Skip flags cargo forwards (e.g. `--bench`); positional args filter.
        let filters = std::env::args()
            .skip(1)
            .filter(|a| !a.starts_with('-'))
            .collect();
        Criterion { filters }
    }
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            sample_size: 10,
            measurement_time: Duration::from_secs(3),
            warm_up_time: Duration::from_secs(1),
        }
    }

    /// Benchmarks a closure outside any group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, f: F) -> &mut Self {
        let mut group = self.benchmark_group("");
        group.bench_function(id, f);
        group.finish();
        self
    }

    fn selected(&self, path: &str) -> bool {
        self.filters.is_empty() || self.filters.iter().any(|f| path.contains(f.as_str()))
    }
}

/// Identifier `name/parameter` for parameterized benchmarks.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    full: String,
}

impl BenchmarkId {
    /// Builds `"{name}/{parameter}"`.
    pub fn new(name: impl Display, parameter: impl Display) -> Self {
        BenchmarkId {
            full: format!("{name}/{parameter}"),
        }
    }
}

/// A group of benchmarks sharing timing configuration.
pub struct BenchmarkGroup<'c> {
    criterion: &'c mut Criterion,
    name: String,
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
}

impl BenchmarkGroup<'_> {
    /// Sets the total measurement budget per benchmark.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement_time = d;
        self
    }

    /// Sets the warm-up budget per benchmark.
    pub fn warm_up_time(&mut self, d: Duration) -> &mut Self {
        self.warm_up_time = d;
        self
    }

    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    /// Runs a named benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, f: F) -> &mut Self {
        let path = self.full_path(id);
        self.run(&path, f);
        self
    }

    /// Runs a parameterized benchmark; the closure receives `input`.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        let path = self.full_path(&id.full);
        self.run(&path, |b| f(b, input));
        self
    }

    /// Ends the group (kept for API compatibility).
    pub fn finish(self) {}

    fn full_path(&self, id: &str) -> String {
        if self.name.is_empty() {
            id.to_string()
        } else {
            format!("{}/{id}", self.name)
        }
    }

    fn run<F: FnMut(&mut Bencher)>(&mut self, path: &str, mut f: F) {
        if !self.criterion.selected(path) {
            return;
        }
        let mut bencher = Bencher {
            warm_up_time: self.warm_up_time,
            measurement_time: self.measurement_time,
            sample_size: self.sample_size,
            samples_ns: Vec::new(),
        };
        f(&mut bencher);
        bencher.report(path);
    }
}

/// Collects timing samples for one benchmark.
pub struct Bencher {
    warm_up_time: Duration,
    measurement_time: Duration,
    sample_size: usize,
    samples_ns: Vec<f64>,
}

impl Bencher {
    /// Measures `f`, called repeatedly in timed batches.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Warm up and estimate the per-iteration cost.
        let warm_start = Instant::now();
        let mut warm_iters = 0u64;
        while warm_start.elapsed() < self.warm_up_time {
            black_box(f());
            warm_iters += 1;
        }
        let per_iter = warm_start.elapsed().as_secs_f64() / warm_iters as f64;

        let per_sample = self.measurement_time.as_secs_f64() / self.sample_size as f64;
        let batch = ((per_sample / per_iter) as u64).max(1);
        self.samples_ns.clear();
        for _ in 0..self.sample_size {
            let start = Instant::now();
            for _ in 0..batch {
                black_box(f());
            }
            self.samples_ns
                .push(start.elapsed().as_secs_f64() * 1e9 / batch as f64);
        }
    }

    fn report(&self, path: &str) {
        if self.samples_ns.is_empty() {
            println!("{path:<40} (no samples — did the closure call iter()?)");
            return;
        }
        let min = self
            .samples_ns
            .iter()
            .copied()
            .fold(f64::INFINITY, f64::min);
        let max = self.samples_ns.iter().copied().fold(0.0f64, f64::max);
        let mean = self.samples_ns.iter().sum::<f64>() / self.samples_ns.len() as f64;
        println!(
            "{path:<40} time: [{} {} {}]  ({} samples)",
            fmt_ns(min),
            fmt_ns(mean),
            fmt_ns(max),
            self.samples_ns.len()
        );
    }
}

fn fmt_ns(ns: f64) -> String {
    if ns < 1e3 {
        format!("{ns:.2} ns")
    } else if ns < 1e6 {
        format!("{:.2} µs", ns / 1e3)
    } else if ns < 1e9 {
        format!("{:.2} ms", ns / 1e6)
    } else {
        format!("{:.3} s", ns / 1e9)
    }
}

/// Declares a function running each benchmark target in sequence.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares the bench binary's `main`, invoking each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_runs_and_records_samples() {
        let mut c = Criterion { filters: vec![] };
        let mut group = c.benchmark_group("g");
        group
            .warm_up_time(Duration::from_millis(5))
            .measurement_time(Duration::from_millis(20))
            .sample_size(4);
        let mut ran = false;
        group.bench_function("f", |b| {
            b.iter(|| black_box(1 + 1));
            ran = true;
        });
        group.finish();
        assert!(ran);
    }

    #[test]
    fn filters_skip_unmatched_benchmarks() {
        let mut c = Criterion {
            filters: vec!["only_this".into()],
        };
        let mut group = c.benchmark_group("g");
        let mut ran = false;
        group.bench_function("other", |_| ran = true);
        group.finish();
        assert!(!ran);
    }

    #[test]
    fn benchmark_id_formats_path() {
        let id = BenchmarkId::new("lanczos", 14);
        assert_eq!(id.full, "lanczos/14");
    }
}
